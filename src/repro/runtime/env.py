"""The :class:`Runtime` facade handed to code under test.

A data structure written for Line-Up receives a :class:`Runtime` in its
constructor and allocates all of its shared state through it, the same way
.NET code implicitly uses the CLR primitives that CHESS instruments.  The
facade also exposes the control operations (bounded choice, yields,
current-thread identity) that implementations occasionally need.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.runtime.locks import Lock
from repro.runtime.memory import (
    AtomicCell,
    PlainCell,
    SharedDict,
    SharedList,
    VolatileCell,
)
from repro.runtime.scheduler import Scheduler

__all__ = ["Runtime"]


class Runtime:
    """Factory for instrumented primitives, bound to one scheduler."""

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    # -- allocation ----------------------------------------------------

    def plain(self, value: Any = None, name: str = "cell") -> PlainCell:
        """A monitored, non-volatile shared variable."""
        return PlainCell(self.scheduler, value, name)

    def volatile(self, value: Any = None, name: str = "volatile") -> VolatileCell:
        """A volatile shared variable (each access is a scheduling point)."""
        return VolatileCell(self.scheduler, value, name)

    def atomic(self, value: Any = None, name: str = "atomic") -> AtomicCell:
        """A volatile cell with CAS / exchange / atomic add."""
        return AtomicCell(self.scheduler, value, name)

    def lock(self, name: str = "lock") -> Lock:
        """A non-reentrant instrumented mutex."""
        return Lock(self.scheduler, name)

    def shared_list(self, items: Iterable[Any] = (), name: str = "list") -> SharedList:
        """An instrumented list backing store."""
        return SharedList(self.scheduler, items, name)

    def shared_dict(self, name: str = "dict") -> SharedDict:
        """An instrumented dict backing store."""
        return SharedDict(self.scheduler, name)

    # -- control -------------------------------------------------------

    def choose(self, n: int) -> int:
        """Bounded nondeterministic choice resolved by the explorer."""
        return self.scheduler.choose(n)

    def choose_bool(self) -> bool:
        """Nondeterministic boolean (e.g. 'did the timeout fire?')."""
        return self.scheduler.choose(2) == 1

    def yield_point(self) -> None:
        """Spin-wait hint: give the scheduler a chance to switch."""
        self.scheduler.yield_point()

    def spin_wait(self) -> None:
        """Fair spin backoff: disabled until another thread progresses."""
        self.scheduler.spin_wait()

    def spin_until(self, predicate: Callable[[], bool]) -> None:
        """Spin (fairly) until *predicate* holds.

        The spin-loop flavour of :meth:`block_until`: semantically
        equivalent, but models implementations that busy-wait instead of
        parking, exercising the fair scheduler.
        """
        while not predicate():
            self.scheduler.spin_wait()

    def block_until(self, predicate: Callable[[], bool]) -> None:
        """Block the calling logical thread until *predicate* holds."""
        self.scheduler.block_until(predicate)

    def harness_wait(self, predicate: Callable[[], bool]) -> None:
        """Infrastructure wait that never counts as a stuck operation."""
        self.scheduler.block_until(predicate, harness=True)

    def current_thread(self) -> int:
        """Logical id of the calling thread (0-based)."""
        return self.scheduler.current_thread()

    def thread_count(self) -> int:
        """Number of logical threads in the current execution."""
        return self.scheduler.thread_count()
