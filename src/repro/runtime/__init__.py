"""The stateless model-checking runtime (the paper's CHESS substitute).

Public surface:

* :class:`Scheduler` — serializes logical threads and enumerates their
  interleavings at the granularity of instrumented operations (the
  ``baton`` engine: real OS threads handed a semaphore baton).
* :class:`CoopScheduler` — the same contract with zero OS threads in the
  common path (the ``coop`` engine: generator tasks resumed with
  ``send()``); :func:`make_scheduler` selects between the two by name.
* :class:`Runtime` — the facade through which code under test allocates
  instrumented shared state (cells, atomics, locks, containers).
* :class:`DFSStrategy`, :class:`RandomStrategy`, :class:`ReplayStrategy` —
  exploration strategies (exhaustive / sampled / single replay).
"""

from repro.runtime.coop import CoopScheduler
from repro.runtime.env import Runtime
from repro.runtime.errors import (
    DecisionReplayError,
    ExecutionAbort,
    SchedulerError,
)
from repro.runtime.locks import Lock
from repro.runtime.monitor import Monitor
from repro.runtime.memory import (
    AccessRecord,
    AtomicCell,
    PlainCell,
    SharedDict,
    SharedList,
    VolatileCell,
)
from repro.runtime.scheduler import (
    Decision,
    ExecutionOutcome,
    Scheduler,
    SchedulingStrategy,
    thread_name,
)
from repro.runtime.strategies import (
    DFSStrategy,
    IterativeDFSStrategy,
    PCTStrategy,
    RandomStrategy,
    ReplayStrategy,
    dfs_with_reduction,
    strategy_from_snapshot,
)
from repro.runtime.watchdog import WatchdogConfig, interrupt_thread

#: Engine names accepted by :func:`make_scheduler` and the CLI.
ENGINES = ("baton", "coop")


def make_scheduler(engine: str = "baton", **kwargs):
    """Build a scheduler by engine name (``"baton"`` or ``"coop"``)."""
    if engine == "baton":
        return Scheduler(**kwargs)
    if engine == "coop":
        return CoopScheduler(**kwargs)
    raise ValueError(
        f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
    )


__all__ = [
    "AccessRecord",
    "AtomicCell",
    "CoopScheduler",
    "Decision",
    "DecisionReplayError",
    "DFSStrategy",
    "ENGINES",
    "ExecutionAbort",
    "ExecutionOutcome",
    "IterativeDFSStrategy",
    "Lock",
    "Monitor",
    "PCTStrategy",
    "PlainCell",
    "RandomStrategy",
    "ReplayStrategy",
    "Runtime",
    "Scheduler",
    "SchedulerError",
    "SchedulingStrategy",
    "SharedDict",
    "SharedList",
    "VolatileCell",
    "WatchdogConfig",
    "dfs_with_reduction",
    "interrupt_thread",
    "make_scheduler",
    "strategy_from_snapshot",
    "thread_name",
]
