"""The stateless model-checking runtime (the paper's CHESS substitute).

Public surface:

* :class:`Scheduler` — serializes logical threads and enumerates their
  interleavings at the granularity of instrumented operations.
* :class:`Runtime` — the facade through which code under test allocates
  instrumented shared state (cells, atomics, locks, containers).
* :class:`DFSStrategy`, :class:`RandomStrategy`, :class:`ReplayStrategy` —
  exploration strategies (exhaustive / sampled / single replay).
"""

from repro.runtime.env import Runtime
from repro.runtime.errors import (
    DecisionReplayError,
    ExecutionAbort,
    SchedulerError,
)
from repro.runtime.locks import Lock
from repro.runtime.monitor import Monitor
from repro.runtime.memory import (
    AccessRecord,
    AtomicCell,
    PlainCell,
    SharedDict,
    SharedList,
    VolatileCell,
)
from repro.runtime.scheduler import (
    Decision,
    ExecutionOutcome,
    Scheduler,
    SchedulingStrategy,
    thread_name,
)
from repro.runtime.strategies import (
    DFSStrategy,
    IterativeDFSStrategy,
    PCTStrategy,
    RandomStrategy,
    ReplayStrategy,
    dfs_with_reduction,
    strategy_from_snapshot,
)
from repro.runtime.watchdog import WatchdogConfig, interrupt_thread

__all__ = [
    "AccessRecord",
    "AtomicCell",
    "Decision",
    "DecisionReplayError",
    "DFSStrategy",
    "ExecutionAbort",
    "ExecutionOutcome",
    "IterativeDFSStrategy",
    "Lock",
    "Monitor",
    "PCTStrategy",
    "PlainCell",
    "RandomStrategy",
    "ReplayStrategy",
    "Runtime",
    "Scheduler",
    "SchedulerError",
    "SchedulingStrategy",
    "SharedDict",
    "SharedList",
    "VolatileCell",
    "WatchdogConfig",
    "dfs_with_reduction",
    "interrupt_thread",
    "strategy_from_snapshot",
    "thread_name",
]
