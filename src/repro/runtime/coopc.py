"""The cooperative "compiler": AST rewriting for the zero-thread engine.

The coop engine (:mod:`repro.runtime.coop`) runs every logical thread as
a plain Python *generator* resumed with ``send()`` from a single OS
thread.  Arbitrary direct-style code — the structures under test, the
instrumented runtime primitives, the harness thread bodies — cannot
suspend by itself: only a frame that is *syntactically* a generator can
yield.  Pure CPython has no greenlets, so suspension must be compiled
in.  This module does that compilation:

* :func:`coopify_body` turns a top-level thread body (a zero-argument
  closure) into a generator function whose instrumented operations
  *yield effects* to the engine instead of calling into a scheduler that
  would have to block an OS thread.
* Calls on the five suspending scheduler methods (``schedule_point``,
  ``block_until``, ``spin_wait``, ``yield_point`` — spelled as plain
  attribute calls on a scheduler or :class:`~repro.runtime.env.Runtime`
  receiver) are inlined into *effect tuples* yielded straight to the
  engine, with no runtime dispatch at all.
* Every other call site is rewritten, bottom-up, into a trampoline
  dispatch: ``__coop_call__`` runs non-suspending callees *directly* and
  returns their value, while callees from *cooperative modules* (the
  instrumented runtime, the structures, the harness, any module that
  contributed a thread body) come back as generators that the call site
  enters with ``yield from``, so suspension propagates through
  arbitrarily deep call stacks.  The discrimination happens at the call
  site — a result is delegated to only when it is a generator running
  one of the compiler's own code objects — so the common direct call
  pays one type check instead of a generator frame.
* Classes from cooperative modules are instantiated via ``cls.__new__``
  plus a cooperative ``__init__`` call when the ``__init__`` can
  suspend; classes whose ``__init__`` provably cannot (no call sites,
  or synthesized without source, like dataclasses) are constructed
  directly.
* ``with`` statements are expanded into the full PEP 343 protocol with
  cooperative ``__enter__``/``__exit__`` calls, because lock and monitor
  context managers suspend.

Rewriting happens once per *code object* (transformed code objects are
cached, and materialized closures are memoized per function object), so
the per-execution closures the harness builds pay the rebind once, not
per call.  The transformation is purely additive on semantics: the same
source runs under the baton engine untouched and under the coop engine
recompiled, which is what makes the two engines' decision traces
comparable step for step.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types

from repro.runtime.errors import SchedulerError

__all__ = [
    "coop_call",
    "coop_direct",
    "coopify_body",
    "is_cooperative",
    "register_module",
]

#: Names under which the compiler's runtime is injected into cooperative
#: globals: the keyword-free trampoline, its keyword-accepting variant,
#: the generator type, and the set of compiler-produced code objects
#: (what a call site checks before delegating with ``yield from``).
CALL_NAME = "__coop_call__"
KW_CALL_NAME = "__coop_callkw__"
GEN_NAME = "__coop_gen__"
CODES_NAME = "__coop_codes__"

#: Effect kinds yielded to the engine (tuple tag in slot 0).
E_SCHED = 0  #: ``(E_SCHED, boundary)``
E_BLOCK = 1  #: ``(E_BLOCK, predicate, harness)``
E_CHOOSE = 2  #: ``(E_CHOOSE, n)``
E_SPIN = 3  #: ``(E_SPIN,)``

#: Suspension primitives inlined at the call site.  Receivers of these
#: attribute names in cooperative modules are always a scheduler or a
#: pure delegator to one (:class:`repro.runtime.env.Runtime`), so the
#: call can be compiled to a bare ``yield`` of the effect tuple.
#: ``choose`` is deliberately *not* inlined: the name is too generic to
#: claim by attribute alone, and choose sites are rare.
_EFFECT_ATTRS = frozenset(
    ("schedule_point", "block_until", "spin_wait", "yield_point")
)

#: Method names that, across every cooperative module, only ever resolve
#: to provably non-suspending implementations (``_Location._record`` and
#: friends — plain bookkeeping with no scheduling point below them).
#: Calls on pure attribute-chain receivers are left as plain calls,
#: skipping the trampoline entirely.  Keep this list in sync with the
#: definitions it names; adding a suspending method under one of these
#: names would silently run it uninstrumented.
_DIRECT_ATTRS = frozenset(
    ("_record", "peek", "peek_len", "current_thread", "holder")
)

#: Builtins that can never suspend and are left as plain calls (no
#: trampoline) when the name is not shadowed by a local or module
#: global.  Anything lazy enough to call back into user code later
#: (``map``, ``filter``) is excluded, though even those would only get
#: today's direct-call semantics.
_SAFE_BUILTINS = frozenset(
    (
        "abs", "bool", "bytearray", "bytes", "callable", "chr", "dict",
        "divmod", "enumerate", "float", "format", "frozenset", "getattr",
        "hasattr", "hash", "id", "int", "isinstance", "issubclass",
        "iter", "len", "list", "max", "min", "next", "ord", "print",
        "range", "repr", "reversed", "round", "set", "setattr", "sorted",
        "str", "sum", "tuple", "type", "zip",
    )
)

#: Modules whose code is recompiled when entered from cooperative code.
_MODULES: set[str] = {
    "repro.core.harness",
    "repro.exec.faults",
    "repro.runtime.env",
    "repro.runtime.locks",
    "repro.runtime.memory",
    "repro.runtime.monitor",
}
_PREFIXES: tuple[str, ...] = ("repro.structures.",)

_COOP_CACHE: dict[str, bool] = {}

#: Dispatch cache: code object (or non-function callable) -> entry tuple.
#: Entries: ``("direct",)``, ``("effect", which)``, ``("gen", func)``,
#: ``("genf", code, closure_index_map)``, ``("class", cls)``.
_DISPATCH: dict = {}

#: Every code object the compiler can hand back as a generator: the
#: transformed functions plus the two helper generators below.  A call
#: site delegates to its trampoline result if and only if the result is
#: a generator running one of these — a direct call that happens to
#: return some unrelated generator object passes through untouched.
_COOP_CODES: set = set()

_FunctionType = types.FunctionType
_MethodType = types.MethodType
_GeneratorType = types.GeneratorType


def register_module(name: str) -> None:
    """Mark *name* (a module ``__name__``) as cooperative.

    Test modules that define thread bodies calling helper functions
    which suspend should register themselves; :func:`coopify_body`
    does it automatically for the module of every top-level body.
    """
    if name not in _MODULES:
        _MODULES.add(name)
        _COOP_CACHE.clear()


def is_cooperative(name: str) -> bool:
    """Whether functions from module *name* are recompiled when called."""
    hit = _COOP_CACHE.get(name)
    if hit is None:
        hit = name in _MODULES or name.startswith(_PREFIXES)
        _COOP_CACHE[name] = hit
    return hit


def coop_direct(fn):
    """Mark *fn* as never-suspending: the trampoline calls it directly.

    For hot helpers in cooperative modules that provably contain no
    scheduling point anywhere below them (e.g. access-record
    bookkeeping).  The marked function — and therefore everything it
    calls — runs as ordinary Python, skipping compilation entirely.
    The contract is the author's to keep: a suspension reached through
    a marked function raises the engine's uncooperative-call error.
    """
    fn.__coop_direct__ = True
    return fn


def register_effects(cls) -> None:
    """Register *cls*'s suspending methods as engine effects.

    Called once by :mod:`repro.runtime.coop` for ``CoopScheduler``: the
    methods' code objects are mapped to effect tags so the trampoline
    turns bound-method calls into yielded effects instead of invoking
    the (deliberately raising) direct implementations.  Most effect
    sites never reach the trampoline — the rewriter inlines them — but
    aliased or dynamically dispatched calls still land here.
    """
    for name, which in (
        ("schedule_point", 0),
        ("block_until", 1),
        ("choose", 2),
        ("spin_wait", 3),
        ("yield_point", 4),
    ):
        _DISPATCH[getattr(cls, name).__code__] = ("effect", which)


# ---------------------------------------------------------------------------
# The trampoline.


def _effect(effect):
    """One-yield generator surfacing *effect* to the engine."""
    return (yield effect)


_NO_KWARGS: dict = {}


def _construct(cls, args, kwargs):
    """Instantiate *cls* with a cooperative (suspendable) ``__init__``."""
    obj = cls.__new__(cls)
    if isinstance(obj, cls):
        init = type(obj).__init__
        if init is not object.__init__:
            r = coop_callkw(init, obj, *args, **kwargs)
            if r.__class__ is _GeneratorType and r.gi_code in _COOP_CODES:
                yield from r
        elif args or kwargs:
            init(obj, *args, **kwargs)  # the usual TypeError
    return obj


def coop_call(__callee, *args):
    """Trampoline for a keyword-free rewritten call site.

    Returns either the call's *value* (non-suspending callee, executed
    right here) or a *generator* built from a compiler-produced code
    object, which the call site enters with ``yield from`` so its
    effect yields surface in the engine.
    """
    if type(__callee) is _MethodType and (
        type(func := __callee.__func__) is _FunctionType
    ):
        # Bound method over a plain function — the hot case.  The code
        # object is always hashable, so the lookup needs no guards, and
        # "gen" / "direct" resolve without touching the shared tail.
        target = func
        key = func.__code__
        entry = _DISPATCH.get(key)
        if entry is None:
            entry = _resolve(func, key)
        tag = entry[0]
        if tag == "gen":
            return entry[1](__callee.__self__, *args)
        if tag == "direct":
            return __callee(*args)
    else:
        func = None
        target = __callee
        key = target.__code__ if type(target) is _FunctionType else target
        try:
            entry = _DISPATCH.get(key)
        except TypeError:  # unhashable callable
            return __callee(*args)
        if entry is None:
            entry = _resolve(target, key)
        tag = entry[0]
    if tag == "direct":
        return __callee(*args)
    if tag == "gen":
        if func is None:
            return entry[1](*args)
        return entry[1](__callee.__self__, *args)
    if tag == "genf":
        try:
            made = target.__coop_made__
        except AttributeError:
            made = target.__coop_made__ = _materialize(entry, target)
        if func is None:
            return made(*args)
        return made(__callee.__self__, *args)
    if tag == "effect":
        which = entry[1]
        if which == 0:  # schedule_point(boundary=False)
            return _effect((E_SCHED, args[0] if args else False))
        if which == 1:  # block_until(predicate, harness=False)
            return _effect(
                (E_BLOCK, args[0], args[1] if len(args) > 1 else False)
            )
        if which == 2:  # choose(n)
            return _effect((E_CHOOSE, args[0]))
        if which == 3:  # spin_wait()
            return _effect((E_SPIN,))
        return _effect((E_SCHED, False))  # yield_point()
    return _construct(entry[1], args, _NO_KWARGS)  # tag == "class"


def coop_callkw(__callee, *args, **kwargs):
    """Trampoline for call sites with keyword arguments (the rare case)."""
    if type(__callee) is _MethodType:
        func = __callee.__func__
        target = func
    else:
        func = None
        target = __callee
    key = target.__code__ if type(target) is _FunctionType else target
    try:
        entry = _DISPATCH.get(key)
    except TypeError:  # unhashable callable
        return __callee(*args, **kwargs)
    if entry is None:
        entry = _resolve(target, key)
    tag = entry[0]
    if tag == "direct":
        return __callee(*args, **kwargs)
    if tag == "gen":
        if func is None:
            return entry[1](*args, **kwargs)
        return entry[1](__callee.__self__, *args, **kwargs)
    if tag == "genf":
        try:
            made = target.__coop_made__
        except AttributeError:
            made = target.__coop_made__ = _materialize(entry, target)
        if func is None:
            return made(*args, **kwargs)
        return made(__callee.__self__, *args, **kwargs)
    if tag == "effect":
        which = entry[1]
        if which == 0:  # schedule_point(boundary=False)
            return _effect(
                (E_SCHED, args[0] if args else kwargs.get("boundary", False))
            )
        if which == 1:  # block_until(predicate, harness=False)
            return _effect(
                (
                    E_BLOCK,
                    args[0] if args else kwargs["predicate"],
                    args[1] if len(args) > 1 else kwargs.get("harness", False),
                )
            )
        if which == 2:  # choose(n)
            return _effect((E_CHOOSE, args[0] if args else kwargs["n"]))
        if which == 3:  # spin_wait()
            return _effect((E_SPIN,))
        return _effect((E_SCHED, False))  # yield_point()
    return _construct(entry[1], args, kwargs)  # tag == "class"


_COOP_CODES.add(_effect.__code__)
_COOP_CODES.add(_construct.__code__)


def _materialize(entry, target):
    """Rebind a transformed code object over *target*'s live closure."""
    code, mapping = entry[1], entry[2]
    cells = target.__closure__
    closure = tuple(cells[i] for i in mapping) if mapping else ()
    made = _FunctionType(
        code, target.__globals__, target.__name__, target.__defaults__, closure
    )
    if target.__kwdefaults__:
        made.__kwdefaults__ = dict(target.__kwdefaults__)
    return made


def _resolve(target, key):
    entry = _compute_entry(target)
    _DISPATCH[key] = entry
    return entry


def _init_entry(cls):
    """The dispatch entry of *cls*'s ``__init__`` (resolving if needed)."""
    init = cls.__init__
    if type(init) is not _FunctionType:
        return ("direct",)  # object.__init__ or another slot wrapper
    icode = init.__code__
    entry = _DISPATCH.get(icode)
    if entry is None:
        entry = _resolve(init, icode)
    return entry


def _compute_entry(target):
    if getattr(target, "__coop_direct__", False):
        return ("direct",)
    if isinstance(target, type):
        module = getattr(target, "__module__", "") or ""
        if is_cooperative(module) and target.__new__ is object.__new__:
            if _init_entry(target)[0] == "direct":
                # The __init__ cannot suspend (no call sites, or it was
                # synthesized without source, like a dataclass's): the
                # whole construction is an ordinary call.
                return ("direct",)
            return ("class", target)
        return ("direct",)
    code = getattr(target, "__code__", None)
    if code is None or not isinstance(target, _FunctionType):
        return ("direct",)
    module = target.__globals__.get("__name__", "") or ""
    if not is_cooperative(module):
        return ("direct",)
    return _transform(target)


# ---------------------------------------------------------------------------
# The AST rewriter.


def _load(name):
    return ast.Name(id=name, ctx=ast.Load())


def _receiver_is_pure(node) -> bool:
    """True for a bare attribute chain rooted at a name (``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name)


class _Rewriter(ast.NodeTransformer):
    """Rewrite every call site into a cooperative dispatch.

    Nested scopes (defs, lambdas, class bodies) are left alone: ``yield``
    is illegal or scope-changing there, and calls inside them are
    recompiled lazily if the nested function is itself invoked through
    the trampoline.  Comprehensions with instrumented calls are lowered
    into synthesized nested generators (see :meth:`_lower_comp`);
    ``with`` statements are expanded into the explicit enter/exit
    protocol so context managers may suspend.
    """

    def __init__(
        self,
        self_name: str | None,
        has_class_cell: bool,
        shadowed: frozenset,
    ) -> None:
        self.count = 0
        self._with_serial = 0
        self._comp_serial = 0
        self._self_name = self_name
        self._has_class_cell = has_class_cell
        #: Names that may not refer to the builtin of the same name here
        #: (module globals plus anything assigned in this function).
        self._shadowed = shadowed
        #: Synthesized comprehension helpers, hoisted to the function top.
        self.comp_defs: list[ast.FunctionDef] = []

    # -- scopes we must not descend into ---------------------------------
    def visit_FunctionDef(self, node):
        return node

    def visit_AsyncFunctionDef(self, node):
        return node

    def visit_Lambda(self, node):
        return node

    def visit_ClassDef(self, node):
        return node

    # -- comprehension lowering -------------------------------------------
    # ``yield`` is illegal inside a comprehension, so one that makes
    # instrumented calls (``sum(size.get() for size in sizes)``) cannot be
    # rewritten in place.  It is lowered to explicit loops inside a
    # synthesized nested generator, entered with ``yield from``; the
    # outermost iterable is still evaluated in the enclosing scope (as the
    # call argument), matching Python's own comprehension semantics.
    # Generator expressions become eager here — identical decision traces
    # for full consumers like ``sum``/``list``, which is all the tree uses
    # (a short-circuiting consumer such as ``any`` would see extra
    # scheduling points; keep those out of cooperative modules).

    def visit_ListComp(self, node):
        return self._lower_comp(node, "list")

    def visit_SetComp(self, node):
        return self._lower_comp(node, "set")

    def visit_DictComp(self, node):
        return self._lower_comp(node, "dict")

    def visit_GeneratorExp(self, node):
        return self._lower_comp(node, "list")

    def _lower_comp(self, node, kind):
        if any(gen.is_async for gen in node.generators):
            return node
        before = self.count
        node = self.generic_visit(node)
        if self.count == before:
            return node  # nothing instrumented inside: leave it alone
        serial = self._comp_serial
        self._comp_serial += 1
        fname = f"__coop_comp{serial}"
        itname = f"__coop_it{serial}"
        res = f"__coop_res{serial}"

        if kind == "dict":
            init = ast.Dict(keys=[], values=[])
            emit = ast.Assign(
                targets=[
                    ast.Subscript(
                        value=_load(res), slice=node.key, ctx=ast.Store()
                    )
                ],
                value=node.value,
            )
        else:
            init = (
                ast.List(elts=[], ctx=ast.Load())
                if kind == "list"
                else ast.Call(func=_load("set"), args=[], keywords=[])
            )
            emit = ast.Expr(
                value=ast.Call(
                    func=ast.Attribute(
                        value=_load(res),
                        attr="append" if kind == "list" else "add",
                        ctx=ast.Load(),
                    ),
                    args=[node.elt],
                    keywords=[],
                )
            )
        body = [emit]
        for i, gen in reversed(list(enumerate(node.generators))):
            for cond in reversed(gen.ifs):
                body = [ast.If(test=cond, body=body, orelse=[])]
            body = [
                ast.For(
                    target=gen.target,
                    iter=_load(itname) if i == 0 else gen.iter,
                    body=body,
                    orelse=[],
                )
            ]
        self.comp_defs.append(
            ast.FunctionDef(
                name=fname,
                args=ast.arguments(
                    posonlyargs=[],
                    args=[ast.arg(arg=itname)],
                    vararg=None,
                    kwonlyargs=[],
                    kw_defaults=[],
                    defaults=[],
                    kwarg=None,
                ),
                body=[
                    ast.Assign(
                        targets=[ast.Name(id=res, ctx=ast.Store())],
                        value=init,
                    ),
                    *body,
                    ast.Return(value=_load(res)),
                    # Unreachable: forces generator-ness even when only the
                    # outermost iterable contained instrumented calls.
                    ast.Expr(value=ast.Yield(value=None)),
                ],
                decorator_list=[],
                returns=None,
                type_comment=None,
            )
        )
        return ast.YieldFrom(
            value=ast.Call(
                func=_load(fname),
                args=[node.generators[0].iter],
                keywords=[],
            )
        )

    # -- the call rewrite -------------------------------------------------
    def visit_Call(self, node):
        self.generic_visit(node)
        f = node.func
        if isinstance(f, ast.Name):
            if (
                f.id == "super"
                and not node.args
                and not node.keywords
            ):
                # Zero-argument super() needs the compiler-provided
                # __class__ cell, which the recompiled function would
                # lack; make the arguments explicit (the cell is wired
                # as a plain freevar).
                if self._has_class_cell and self._self_name:
                    return ast.Call(
                        func=f,
                        args=[
                            _load("__class__"),
                            _load(self._self_name),
                        ],
                        keywords=[],
                    )
                return node
            if f.id in _SAFE_BUILTINS and f.id not in self._shadowed:
                # A genuine builtin: cannot suspend, call it directly.
                return node
        if (
            isinstance(f, ast.Attribute)
            and f.attr in _DIRECT_ATTRS
            and _receiver_is_pure(f.value)
        ):
            # A known non-suspending method: call it directly.
            return node
        inlined = self._inline_effect(node)
        if inlined is not None:
            self.count += 1
            return inlined
        self.count += 1
        return self._dispatch_expr(node)

    def _inline_effect(self, node):
        """Compile ``sched.schedule_point()`` & co to a bare effect yield.

        Only when the receiver is a pure attribute chain (no calls or
        subscripts whose evaluation could matter) and the arguments fit
        the known signature.  In cooperative modules these four names
        are only ever methods of a scheduler or of the
        :class:`~repro.runtime.env.Runtime` facade that delegates to
        one, so dropping the receiver expression is sound.
        """
        f = node.func
        if not isinstance(f, ast.Attribute) or f.attr not in _EFFECT_ATTRS:
            return None
        if not _receiver_is_pure(f.value):
            return None
        if any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords
        ):
            return None
        args, kw = node.args, {k.arg: k.value for k in node.keywords}
        false = ast.Constant(value=False)
        if f.attr == "schedule_point":
            if len(args) > 1 or set(kw) - {"boundary"}:
                return None
            boundary = args[0] if args else kw.get("boundary", false)
            elts = [ast.Constant(value=E_SCHED), boundary]
        elif f.attr == "block_until":
            if len(args) > 2 or set(kw) - {"predicate", "harness"}:
                return None
            pred = args[0] if args else kw.get("predicate")
            if pred is None:
                return None
            harness = args[1] if len(args) > 1 else kw.get("harness", false)
            elts = [ast.Constant(value=E_BLOCK), pred, harness]
        elif f.attr == "spin_wait":
            if args or kw:
                return None
            elts = [ast.Constant(value=E_SPIN)]
        else:  # yield_point
            if args or kw:
                return None
            elts = [ast.Constant(value=E_SCHED), false]
        return ast.Yield(
            value=ast.Tuple(elts=elts, ctx=ast.Load())
        )

    def _dispatch_expr(self, node):
        """The rewritten call site.

        ``(yield from t) if (t := __coop_call__(f, ...)) is one of our
        generators else t`` — direct results pass through with a type
        check; only genuinely suspendable callees pay a delegation.
        """
        callname = KW_CALL_NAME if node.keywords else CALL_NAME
        call = ast.Call(
            func=_load(callname),
            args=[node.func, *node.args],
            keywords=node.keywords,
        )
        named = ast.NamedExpr(
            target=ast.Name(id="__coop_t", ctx=ast.Store()), value=call
        )
        is_gen = ast.Compare(
            left=ast.Attribute(value=named, attr="__class__", ctx=ast.Load()),
            ops=[ast.Is()],
            comparators=[_load(GEN_NAME)],
        )
        is_ours = ast.Compare(
            left=ast.Attribute(
                value=_load("__coop_t"), attr="gi_code", ctx=ast.Load()
            ),
            ops=[ast.In()],
            comparators=[_load(CODES_NAME)],
        )
        return ast.IfExp(
            test=ast.BoolOp(op=ast.And(), values=[is_gen, is_ours]),
            body=ast.YieldFrom(value=_load("__coop_t")),
            orelse=_load("__coop_t"),
        )

    # -- with-statement expansion -----------------------------------------
    def visit_With(self, node):
        self.generic_visit(node)
        return self._expand_with(node.items, node.body)

    def _coop(self, *argnodes):
        self.count += 1
        return self._dispatch_expr(
            ast.Call(func=argnodes[0], args=list(argnodes[1:]), keywords=[])
        )

    def _expand_with(self, items, body):
        item = items[0]
        if len(items) > 1:
            body = self._expand_with(items[1:], body)
        serial = self._with_serial
        self._with_serial += 1
        mgr = f"__coop_mgr{serial}"
        ok = f"__coop_ok{serial}"
        err = f"__coop_err{serial}"

        def store(name):
            return ast.Name(id=name, ctx=ast.Store())

        def attr(obj, name):
            return ast.Attribute(value=_load(obj), attr=name, ctx=ast.Load())

        enter = self._coop(attr(mgr, "__enter__"))
        stmts = [ast.Assign(targets=[store(mgr)], value=item.context_expr)]
        if item.optional_vars is not None:
            stmts.append(
                ast.Assign(targets=[item.optional_vars], value=enter)
            )
        else:
            stmts.append(ast.Expr(value=enter))
        stmts.append(
            ast.Assign(targets=[store(ok)], value=ast.Constant(value=True))
        )
        handler = ast.ExceptHandler(
            type=_load("BaseException"),
            name=err,
            body=[
                ast.Assign(
                    targets=[store(ok)], value=ast.Constant(value=False)
                ),
                ast.If(
                    test=ast.UnaryOp(
                        op=ast.Not(),
                        operand=self._coop(
                            attr(mgr, "__exit__"),
                            ast.Call(
                                func=_load("type"), args=[_load(err)], keywords=[]
                            ),
                            _load(err),
                            attr(err, "__traceback__"),
                        ),
                    ),
                    body=[ast.Raise(exc=None, cause=None)],
                    orelse=[],
                ),
            ],
        )
        none = ast.Constant(value=None)
        finalbody = [
            ast.If(
                test=_load(ok),
                body=[
                    ast.Expr(
                        value=self._coop(attr(mgr, "__exit__"), none, none, none)
                    )
                ],
                orelse=[],
            )
        ]
        stmts.append(
            ast.Try(
                body=list(body),
                handlers=[handler],
                orelse=[],
                finalbody=finalbody,
            )
        )
        return stmts


def _function_node(fn, code):
    """Parse *fn*'s source and return its (possibly synthesized) def node."""
    lines, start = inspect.getsourcelines(fn)
    source = textwrap.dedent("".join(lines))
    offset = 0
    try:
        tree = ast.parse(source)
    except SyntaxError:
        # A fragment that is not a statement on its own (e.g. a lambda on
        # a ``return`` line): parse inside a dummy enclosing function.
        tree = ast.parse(
            "def __coop_wrap__():\n" + textwrap.indent(source, "    ")
        )
        offset = 1
    if fn.__name__ != "<lambda>":
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == fn.__name__
            ):
                node.decorator_list = []
                return node
        return None
    target_line = code.co_firstlineno - start + 1 + offset
    lambdas = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Lambda)
        and node.lineno == target_line
        and len(node.args.args) + len(node.args.posonlyargs)
        == code.co_argcount
    ]
    if not lambdas:
        return None
    # Prefer the outermost candidate: inner lambdas on the same line are
    # arguments (typically block_until predicates evaluated engine-side).
    inner = set()
    for cand in lambdas:
        for other in ast.walk(cand):
            if other is not cand and other in lambdas:
                inner.add(id(other))
    outer = [cand for cand in lambdas if id(cand) not in inner]
    if len(outer) != 1:
        return None
    lam = outer[0]
    return ast.FunctionDef(
        name="__coop_lambda__",
        args=lam.args,
        body=[ast.Return(value=lam.body)],
        decorator_list=[],
        returns=None,
        type_comment=None,
    )


def _find_code(parent: types.CodeType, name: str) -> types.CodeType:
    for const in parent.co_consts:
        if isinstance(const, types.CodeType) and const.co_name == name:
            return const
    raise SchedulerError(
        f"coop compiler lost the code object for {name!r}"
    )  # pragma: no cover - internal invariant


def _has_own_yield(fdef) -> bool:
    """Whether *fdef* yields in its own scope (i.e. is a generator)."""
    stack = list(fdef.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _shadowed_names(fdef, fn) -> frozenset:
    """Names that may not be builtins inside *fdef*: module globals plus
    everything the function assigns, imports, or declares."""
    names = set(fn.__globals__)
    for node in ast.walk(fdef):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, ast.arg):
            names.add(node.arg)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    return frozenset(names)


def _transform(fn):
    """Recompile *fn* into a generator; return its dispatch entry."""
    code = fn.__code__
    try:
        fdef = _function_node(fn, code)
    except (OSError, TypeError, SyntaxError):
        return ("direct",)
    if fdef is None:
        return ("direct",)
    if _has_own_yield(fdef):
        # A generator function: its own yields would collide with the
        # compiled effect yields.  Run it uninstrumented (cooperative
        # modules keep generator helpers off the suspension paths).
        return ("direct",)
    arg_nodes = fdef.args.posonlyargs + fdef.args.args
    self_name = arg_nodes[0].arg if arg_nodes else None
    rewriter = _Rewriter(
        self_name,
        "__class__" in code.co_freevars,
        _shadowed_names(fdef, fn),
    )
    new_body = []
    for stmt in fdef.body:
        result = rewriter.visit(stmt)
        if isinstance(result, list):  # a with-statement expansion
            new_body.extend(result)
        elif result is not None:
            new_body.append(result)
    fdef.body = rewriter.comp_defs + new_body
    if rewriter.count == 0:
        # No call sites at all: the function cannot suspend, so the
        # original runs unchanged (and much faster) as a direct call.
        return ("direct",)
    freevars = code.co_freevars
    if freevars:
        outer = ast.FunctionDef(
            name="__coop_outer__",
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg=name) for name in freevars],
                vararg=None,
                kwonlyargs=[],
                kw_defaults=[],
                defaults=[],
                kwarg=None,
            ),
            body=[fdef, ast.Return(value=ast.Name(id=fdef.name, ctx=ast.Load()))],
            decorator_list=[],
            returns=None,
            type_comment=None,
        )
        module = ast.Module(body=[outer], type_ignores=[])
    else:
        module = ast.Module(body=[fdef], type_ignores=[])
    ast.fix_missing_locations(module)
    filename = f"<coop {code.co_filename}:{code.co_firstlineno}>"
    try:
        mod_code = compile(module, filename, "exec")
    except SyntaxError:  # pragma: no cover - unsupported construct
        return ("direct",)
    g = fn.__globals__
    g.setdefault(CALL_NAME, coop_call)
    g.setdefault(KW_CALL_NAME, coop_callkw)
    g.setdefault(GEN_NAME, _GeneratorType)
    g.setdefault(CODES_NAME, _COOP_CODES)
    if freevars:
        outer_code = _find_code(mod_code, "__coop_outer__")
        new_code = _find_code(outer_code, fdef.name)
        mapping = tuple(freevars.index(n) for n in new_code.co_freevars)
        _COOP_CODES.add(new_code)
        return ("genf", new_code, mapping)
    new_code = _find_code(mod_code, fdef.name)
    _COOP_CODES.add(new_code)
    if fn.__defaults__ or fn.__kwdefaults__:
        # Default values are per-function-object (nested defs re-evaluate
        # them); rebind at call time instead of freezing the first seen.
        return ("genf", new_code, ())
    made = _FunctionType(new_code, fn.__globals__, fn.__name__)
    return ("gen", made)


# ---------------------------------------------------------------------------
# Top-level bodies.


def coopify_body(fn):
    """Compile a zero-argument thread body into a generator function.

    Bodies are force-compiled regardless of their module (and their
    module is registered as cooperative, so sibling helpers they call
    suspend properly).  A body that cannot be compiled — no retrievable
    source, or no call sites — is wrapped in a trivial generator; it can
    still run to completion, it just cannot suspend (and a direct call
    into a suspending primitive raises a descriptive
    :class:`SchedulerError` from the engine).
    """
    module = getattr(fn, "__globals__", None)
    if module is not None:
        name = module.get("__name__")
        if name:
            register_module(name)
    code = getattr(fn, "__code__", None)
    if code is None or not isinstance(fn, _FunctionType):

        def _opaque():
            fn()
            return
            yield  # pragma: no cover - makes this a generator

        return _opaque
    entry = _DISPATCH.get(code)
    if entry is None:
        entry = _resolve(fn, code)
    tag = entry[0]
    if tag == "gen":
        return entry[1]
    if tag == "genf":
        try:
            return fn.__coop_made__
        except AttributeError:
            made = fn.__coop_made__ = _materialize(entry, fn)
            return made

    def _plain():
        fn()
        return
        yield  # pragma: no cover - makes this a generator

    return _plain
