"""The zero-thread cooperative engine (generator trampoline).

:class:`CoopScheduler` implements the same contract as the baton
:class:`~repro.runtime.scheduler.Scheduler` — enabled-set computation,
blocking via ``block_until``, stuck/divergence detection, ``Decision``
traces with ``AccessRecord`` segments, deterministic replay from a
decision prefix — without any OS threads in the common path.  Each
logical thread is a *generator* produced by the coop compiler
(:mod:`repro.runtime.coopc`); instrumented operations yield small
*effect tuples*, and the engine resumes the chosen task with ``send()``.
A schedule step is therefore one generator resumption instead of two
semaphore handoffs between OS threads, which is where the engine's
throughput advantage comes from (see ``docs/PERFORMANCE.md``).

Decision-trace parity with the baton engine is the design invariant:
every branch below mirrors the corresponding baton code path (fresh-skip
of the first scheduling point, single-option decisions recorded without
consulting the strategy, the serial-mode stuck rules, the spin-wait
fairness protocol, livelock-vs-deadlock classification), so the two
engines enumerate the *identical* ordered decision tree and a decision
prefix found by one replays on the other.  The differential suite in
``tests/properties/test_engine_equivalence.py`` pins this down.

What still needs the baton engine: code that blocks in C (``time.sleep``,
real I/O) cannot be interrupted from its own thread, so the coop
watchdog — which injects :class:`ExecutionAbort` into the single engine
thread — only catches divergence that executes Python bytecode (infinite
Python loops).  Preemptive teardown of a wedged C call requires the
baton engine's separate controller thread.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator, Sequence

from repro.runtime import coopc
from repro.runtime.coopc import E_BLOCK, E_CHOOSE, E_SCHED, E_SPIN
from repro.runtime.errors import ExecutionAbort, SchedulerError
from repro.runtime.scheduler import (
    Decision,
    ExecutionOutcome,
    SchedulingStrategy,
)
from repro.runtime.watchdog import WatchdogConfig, interrupt_thread

__all__ = ["CoopScheduler"]

# Task states (same vocabulary as the baton engine's workers).
_UNSTARTED = "unstarted"
_RUNNABLE = "runnable"
_BLOCKED = "blocked"
_DONE = "done"

#: Bound on repeated aborts thrown into one generator during teardown
#: (the analogue of the baton engine's bounded abort acknowledgement):
#: hostile cleanup code that keeps yielding through aborts is abandoned.
_ABORT_THROWS = 100


class _StuckExit(BaseException):
    """Internal control flow: unwind the run loop after ``_finish_stuck``.

    A ``BaseException`` so no handler meant for SUT errors catches it.
    """


class _Task:
    """One logical thread: a lazily created generator plus its state."""

    __slots__ = (
        "tid",
        "factory",
        "gen",
        "state",
        "predicate",
        "fresh",
        "yielded",
        "resume",
        "value",
        "throw",
    )

    def __init__(self, tid: int, factory: Callable[[], Any]) -> None:
        self.tid = tid
        self.factory = factory
        self.gen = None
        self.state = _UNSTARTED
        self.predicate: Callable[[], bool] | None = None
        # Mirrors the baton worker's fresh flag: the first scheduling
        # point of a body is redundant with the decision that started it.
        self.fresh = True
        self.yielded = False
        # Mid-``block_until`` continuation: (predicate, harness) to
        # re-check when this task is next granted control.
        self.resume: tuple | None = None
        # Value to ``send()`` (choose results) / exception to ``throw()``
        # at the next resumption.
        self.value: Any = None
        self.throw: BaseException | None = None

    def enabled(self) -> bool:
        if self.yielded:
            return False
        state = self.state
        if state == _UNSTARTED or state == _RUNNABLE:
            return True
        if state == _BLOCKED:
            assert self.predicate is not None
            return bool(self.predicate())
        return False


class CoopScheduler:
    """Drop-in scheduler running logical threads as generators.

    Accepts the same constructor arguments as the baton ``Scheduler``
    (``abort_timeout`` is kept for signature compatibility; teardown is
    synchronous here and bounded by :data:`_ABORT_THROWS` instead).
    """

    engine = "coop"

    def __init__(
        self,
        max_steps: int = 20_000,
        watchdog: WatchdogConfig | float | None = None,
        abort_timeout: float = 10.0,
    ) -> None:
        if max_steps <= 0:
            raise ValueError("max_steps must be positive")
        if abort_timeout < 0:
            raise ValueError("abort_timeout must be >= 0")
        if isinstance(watchdog, (int, float)) and not isinstance(watchdog, bool):
            watchdog = WatchdogConfig(time_limit=float(watchdog))
        self.max_steps = max_steps
        self.watchdog = watchdog
        self.abort_timeout = abort_timeout
        self._progress_ticks = 0
        self._location_serial = 0
        # Per-execution state.
        self._active: list[_Task] = []
        self._strategy: SchedulingStrategy | None = None
        self._serial = False
        self._outcome: ExecutionOutcome | None = None
        self._current: _Task | None = None
        self._any_yielded = False
        self._tearing_down = False
        self._in_execution = False
        self._completed: ExecutionOutcome | None = None
        # Watchdog machinery (started lazily; one daemon thread total —
        # it polices stalls, it does not participate in scheduling).
        self._engine_thread: threading.Thread | None = None
        self._wd_thread: threading.Thread | None = None
        self._wd_stop = threading.Event()
        self._wd_lock = threading.Lock()
        self._wd_armed = False

    # ------------------------------------------------------------------
    # Controller-side API (same shape as the baton engine)
    # ------------------------------------------------------------------

    def execute(
        self,
        bodies: Sequence[Callable[[], None]],
        strategy: SchedulingStrategy,
        serial: bool = False,
    ) -> ExecutionOutcome:
        """Run one execution of *bodies* under *strategy*'s decisions."""
        if self._in_execution:
            raise SchedulerError("execute() is not reentrant")
        if not bodies:
            raise SchedulerError("at least one thread body is required")
        self._in_execution = True
        try:
            try:
                return self._execute(list(bodies), strategy, serial)
            except ExecutionAbort:
                # A watchdog injection raced the very end of a completed
                # execution; its outcome is intact, return it.
                if self._completed is not None:
                    return self._completed
                raise
        finally:
            self._in_execution = False
            self._completed = None

    def explore(
        self,
        bodies_factory: Callable[[], Sequence[Callable[[], None]]],
        strategy: SchedulingStrategy,
        serial: bool = False,
        max_executions: int | None = None,
    ) -> Iterator[ExecutionOutcome]:
        """Yield outcomes for every execution the strategy wants to run."""
        count = 0
        while strategy.more():
            if max_executions is not None and count >= max_executions:
                return
            yield self.execute(bodies_factory(), strategy, serial=serial)
            count += 1

    def shutdown(self) -> None:
        """Stop the watchdog thread (there are no workers to terminate)."""
        self._wd_stop.set()
        if self._wd_thread is not None:
            self._wd_thread.join(timeout=5)
            self._wd_thread = None

    # ------------------------------------------------------------------
    # Controlled-thread API.  The five suspending operations are *not*
    # callable directly: cooperative (recompiled) code reaches them as
    # yielded effects via the trampoline.  A direct call means the
    # calling module was never compiled — fail with a diagnosis instead
    # of deadlocking.
    # ------------------------------------------------------------------

    def schedule_point(self, boundary: bool = False) -> None:
        self._uncooperative("schedule_point")

    def block_until(
        self, predicate: Callable[[], bool], harness: bool = False
    ) -> None:
        self._uncooperative("block_until")

    def choose(self, n: int) -> int:
        self._uncooperative("choose")

    def yield_point(self) -> None:
        self._uncooperative("yield_point")

    def spin_wait(self) -> None:
        self._uncooperative("spin_wait")

    def _uncooperative(self, name: str) -> None:
        raise SchedulerError(
            f"{name}() reached the coop engine as a direct call: the "
            "calling code was not compiled cooperatively.  Register its "
            "module with repro.runtime.coopc.register_module(__name__) "
            "or run this subject under the baton engine (--engine baton)."
        )

    def current_thread(self) -> int:
        """Logical thread id of the currently scheduled task."""
        if self._current is None or not self._in_execution:
            raise SchedulerError("not running on a scheduler-controlled thread")
        return self._current.tid

    def thread_count(self) -> int:
        return len(self._active)

    def record_event(self, payload: Any) -> None:
        self._current_outcome().record_event(payload)

    def record_access(self, payload: Any) -> None:
        self._current_outcome().record_access(payload)

    def new_location_id(self) -> int:
        self._location_serial += 1
        return self._location_serial

    @property
    def serial_mode(self) -> bool:
        return self._serial

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _current_outcome(self) -> ExecutionOutcome:
        if self._outcome is None:
            raise SchedulerError("no execution in progress")
        return self._outcome

    def _record_crash(self, tid: int, exc: BaseException) -> None:
        if self._outcome is not None:
            self._outcome.crashes.append((tid, exc))

    def _execute(
        self,
        bodies: list[Callable[[], None]],
        strategy: SchedulingStrategy,
        serial: bool,
    ) -> ExecutionOutcome:
        self._active = [
            _Task(tid, coopc.coopify_body(body))
            for tid, body in enumerate(bodies)
        ]
        self._strategy = strategy
        self._serial = serial
        self._outcome = ExecutionOutcome(status="complete")
        self._current = None
        self._any_yielded = False
        self._tearing_down = False
        self._completed = None
        if self.watchdog is not None:
            self._arm_watchdog()
        strategy.begin()
        try:
            try:
                task = self._pick_next()
                if task is None:  # pragma: no cover - bodies is non-empty
                    raise SchedulerError("no thread enabled at execution start")
                while task is not None:
                    task = self._advance(task)
            except _StuckExit:
                pass
            except ExecutionAbort:
                # Watchdog injection (into SUT frames or engine code):
                # the running task is wedged, the execution diverged.
                self._finish_divergent()
            self._teardown_tasks()
        finally:
            if self.watchdog is not None:
                self._disarm_watchdog()
        outcome = self._outcome
        assert outcome is not None
        strategy.finish(outcome)
        self._completed = outcome
        self._outcome = None
        self._strategy = None
        self._active = []
        self._current = None
        # Same reset point as the baton engine: the next execution's
        # bodies factory allocates instrumented locations before
        # execute() and must start from 1 again.
        self._location_serial = 0
        return outcome

    def _advance(self, task: _Task) -> _Task | None:
        """Grant control to *task*; return the next task (None = over).

        Mirrors a baton worker waking up after ``baton.acquire()``: the
        task becomes runnable, finishes any interrupted ``block_until``
        loop, then its generator runs until it yields the next effect,
        finishes, or crashes.
        """
        task.state = _RUNNABLE
        task.predicate = None
        if task.resume is not None:
            predicate, harness = task.resume
            task.resume = None
            nxt = self._block_loop(task, predicate, harness)
            if nxt is not task:
                return nxt
        outcome = self._outcome
        max_steps = self.max_steps
        while True:
            self._current = task
            gen = task.gen
            try:
                if gen is None:
                    gen = task.gen = task.factory()
                    effect = gen.send(None)
                elif task.throw is not None:
                    exc = task.throw
                    task.throw = None
                    effect = gen.throw(exc)
                else:
                    value, task.value = task.value, None
                    effect = gen.send(value)
            except StopIteration:
                return self._task_done(task)
            except _StuckExit:  # pragma: no cover - never raised in SUT
                raise
            except ExecutionAbort:
                if self._tearing_down:
                    raise  # watchdog injection surfacing through the SUT
                # A spontaneous abort ends the body silently, exactly as
                # the baton worker loop swallows it.
                return self._task_done(task)
            except BaseException as exc:
                self._record_crash(task.tid, exc)
                return self._task_done(task)
            # Open-coded E_SCHED handling (the dominant effect kind; same
            # steps as ``_handle``, in order): every other kind and the
            # teardown path fall through to the full handler.
            if effect[0] == E_SCHED and not self._tearing_down:
                if self._any_yielded:
                    self._progress(task)
                if task.fresh:
                    task.fresh = False
                    continue
                outcome.steps += 1
                self._progress_ticks += 1
                if outcome.steps > max_steps:
                    self._finish_stuck("livelock")
                    raise _StuckExit()
                boundary = effect[1]
                if self._serial and not boundary:
                    continue
                nxt = self._transfer(task, free=boundary)
                if nxt is not task:
                    return nxt
                continue
            nxt = self._handle(task, effect)
            if nxt is not task:
                return nxt

    def _handle(self, task: _Task, effect: tuple) -> _Task | None:
        """Process one yielded effect; mirrors the baton scheduler API."""
        if self._tearing_down:
            # Cleanup code on a teardown path reached an instrumented
            # point: abort it (the baton engine's _require_worker rule).
            raise ExecutionAbort()
        kind = effect[0]
        if kind == E_SCHED:  # schedule_point(boundary) / yield_point()
            self._progress(task)
            if task.fresh:
                task.fresh = False
                return task
            self._bump_step()
            boundary = effect[1]
            if self._serial and not boundary:
                return task
            return self._transfer(task, free=boundary)
        if kind == E_BLOCK:  # block_until(predicate, harness)
            predicate, harness = effect[1], effect[2]
            self._progress(task)
            if task.fresh:
                task.fresh = False
            else:
                self._bump_step()
                if not self._serial:
                    # The wait is a scheduling point even when it would
                    # not block.
                    nxt = self._transfer(task)
                    if nxt is not task:
                        task.resume = (predicate, harness)
                        return nxt
            return self._block_loop(task, predicate, harness)
        if kind == E_CHOOSE:  # choose(n)
            n = effect[1]
            if n <= 0:
                task.throw = ValueError(
                    "choose() needs at least one alternative"
                )
                return task
            task.fresh = False  # a value decision is never redundant
            self._progress(task)
            self._bump_step()
            if n == 1:
                task.value = 0
                return task
            try:
                task.value = self._decide("value", tuple(range(n)), task.tid)
            except Exception as exc:
                task.throw = exc
            return task
        if kind == E_SPIN:  # spin_wait()
            self._progress(task)
            task.fresh = False
            self._bump_step()
            if self._serial:
                self._finish_stuck("livelock")
                raise _StuckExit()
            task.yielded = True
            self._any_yielded = True
            return self._transfer(task)
        task.throw = SchedulerError(f"unknown coop effect: {effect!r}")
        return task

    def _block_loop(
        self, task: _Task, predicate: Callable[[], bool], harness: bool
    ) -> _Task | None:
        """The ``while not predicate()`` loop of ``block_until``."""
        while True:
            try:
                satisfied = bool(predicate())
            except Exception as exc:
                task.throw = exc  # surfaces inside the blocked body
                return task
            if satisfied:
                return task
            if self._serial and not harness:
                self._finish_stuck("deadlock")
                raise _StuckExit()
            task.state = _BLOCKED
            task.predicate = predicate
            nxt = self._transfer(task)
            if nxt is not task:
                task.resume = (predicate, harness)
                return nxt
            # Rescheduled to itself: the predicate held at decision time
            # and nothing ran since, so the loop exits on the re-check.
            task.state = _RUNNABLE
            task.predicate = None

    def _progress(self, task: _Task) -> None:
        """*task* made progress: re-enable threads spin-waiting on it.

        ``_any_yielded`` makes this a no-op unless some task is actually
        spin-waiting — the overwhelmingly common case.  The flag stays
        set while *task* itself is still marked yielded (only other
        tasks' progress may clear its mark, as on the baton engine).
        """
        if self._any_yielded:
            any_left = False
            for other in self._active:
                if other is not task:
                    other.yielded = False
                elif other.yielded:
                    any_left = True
            self._any_yielded = any_left

    def _bump_step(self) -> None:
        outcome = self._outcome
        assert outcome is not None
        outcome.steps += 1
        self._progress_ticks += 1
        if outcome.steps > self.max_steps:
            self._finish_stuck("livelock")
            raise _StuckExit()

    def _decide(
        self, kind: str, options: tuple, running: int | None, free: bool = False
    ) -> Any:
        strategy = self._strategy
        assert strategy is not None
        outcome = self._outcome
        assert outcome is not None
        if len(options) == 1:
            chosen = options[0]
        else:
            chosen = strategy.decide(kind, options, running, free)
            if chosen not in options:
                raise SchedulerError(
                    f"strategy chose {chosen!r}, not among options {options!r}"
                )
        outcome.decisions.append(Decision(kind, options, chosen, running, free))
        return chosen

    def _transfer(self, task: _Task, free: bool = False) -> _Task | None:
        """Pick the next task; return it (or *task* itself to continue).

        The enabled scan open-codes ``_Task.enabled`` (``is`` on the
        interned state constants) and the thread decision open-codes
        ``_decide``: this runs once per scheduling step and is the
        engine's single hottest path.
        """
        active = self._active
        tid = task.tid
        try:
            enabled = [
                t.tid
                for t in active
                if not t.yielded
                and (
                    t.state is _RUNNABLE
                    or t.state is _UNSTARTED
                    or (t.state is _BLOCKED and t.predicate())
                )
            ]
            if not enabled:
                spinning = any(
                    t.yielded
                    and (
                        t.state in (_UNSTARTED, _RUNNABLE)
                        or (t.state == _BLOCKED and t.predicate())
                    )
                    for t in active
                )
                self._finish_stuck("livelock" if spinning else "deadlock")
                raise _StuckExit()
            if len(enabled) == 1:
                chosen = enabled[0]
                options = (chosen,)
            else:
                options = tuple(enabled)
                chosen = self._strategy.decide("thread", options, tid, free)
                if chosen not in options:
                    raise SchedulerError(
                        f"strategy chose {chosen!r}, "
                        f"not among options {options!r}"
                    )
            self._outcome.decisions.append(
                Decision("thread", options, chosen, tid, free)
            )
        except (_StuckExit, ExecutionAbort):
            raise
        except Exception as exc:
            # Strategy errors (replay mismatches, invalid choices) and
            # hostile blocking predicates surface inside the running
            # body, as they do on a baton worker thread.
            task.throw = exc
            return task
        if chosen == tid:
            task.state = _RUNNABLE
            task.predicate = None
            return task
        self._progress_ticks += 1
        return active[chosen]

    def _pick_next(self) -> _Task | None:
        enabled = [t.tid for t in self._active if t.enabled()]
        if not enabled:
            return None
        running = self._current.tid if self._current is not None else None
        chosen = self._decide("thread", tuple(enabled), running, free=True)
        return self._active[chosen]

    def _task_done(self, task: _Task) -> _Task | None:
        """The baton engine's ``_on_thread_done``, minus the handshake."""
        task.state = _DONE
        task.predicate = None
        task.resume = None
        task.gen = None
        self._progress_ticks += 1
        if all(t.state == _DONE for t in self._active):
            return None
        # A thread completing is progress: re-enable spin-yielded threads.
        for t in self._active:
            t.yielded = False
        self._any_yielded = False
        nxt = self._pick_next()
        if nxt is None:
            self._finish_stuck("deadlock")
            return None
        return nxt

    def _finish_stuck(self, kind: str) -> None:
        outcome = self._outcome
        assert outcome is not None
        outcome.status = "stuck"
        outcome.stuck_kind = kind
        outcome.pending_threads = tuple(
            t.tid for t in self._active if t.state != _DONE
        )
        self._tearing_down = True

    def _finish_divergent(self) -> None:
        outcome = self._outcome
        if outcome is None:  # pragma: no cover - defensive
            return
        outcome.status = "divergent"
        outcome.stuck_kind = None
        outcome.pending_threads = tuple(
            t.tid for t in self._active if t.state != _DONE
        )
        self._tearing_down = True

    def _teardown_tasks(self) -> None:
        """Unwind generators still alive after a stuck/divergent finish.

        The task that held control unwinds first (it is mid-body, like
        the baton's stuck-detecting worker), then the rest in tid order.
        Each gets :class:`ExecutionAbort` thrown in; cleanup code that
        reaches an instrumented point on the way out aborts again, with
        :data:`_ABORT_THROWS` bounding hostile swallow-and-continue.
        """
        if not self._tearing_down:
            self._current = None
            return
        order: list[_Task] = []
        current = self._current
        if current is not None and current.gen is not None:
            order.append(current)
        for task in self._active:
            if task is not current and task.gen is not None:
                order.append(task)
        for task in order:
            self._abort_task(task)
        for task in self._active:
            task.state = _DONE
            task.predicate = None
            task.resume = None
            task.gen = None
        self._tearing_down = False
        self._current = None

    def _abort_task(self, task: _Task) -> None:
        gen = task.gen
        task.gen = None
        for _ in range(_ABORT_THROWS):
            try:
                gen.throw(ExecutionAbort)
            except StopIteration:
                return
            except ExecutionAbort:
                return
            except BaseException as exc:
                self._record_crash(task.tid, exc)
                return
            # The generator yielded another effect while unwinding
            # (cleanup hit an instrumented point): abort it again.
        # Hostile generator absorbed every abort: abandon the reference
        # (the baton engine abandons such workers the same way).

    # ------------------------------------------------------------------
    # Watchdog: one daemon thread polling progress ticks; on a stall it
    # injects ExecutionAbort into the engine thread (which is inside
    # ``gen.send`` executing wedged SUT bytecode).
    # ------------------------------------------------------------------

    def _arm_watchdog(self) -> None:
        if self._wd_thread is None:
            self._wd_stop.clear()
            self._wd_thread = threading.Thread(
                target=self._watchdog_loop,
                name="lineup-coop-watchdog",
                daemon=True,
            )
            self._wd_thread.start()
        with self._wd_lock:
            self._engine_thread = threading.current_thread()
            self._wd_armed = True

    def _disarm_watchdog(self) -> None:
        with self._wd_lock:
            self._wd_armed = False

    def _watchdog_loop(self) -> None:
        cfg = self.watchdog
        assert cfg is not None
        ticks: int | None = None
        deadline = 0.0
        while not self._wd_stop.wait(cfg.poll_interval):
            with self._wd_lock:
                if not self._wd_armed:
                    ticks = None
                    continue
                now = time.monotonic()
                seen = self._progress_ticks
                if seen != ticks:
                    ticks = seen
                    deadline = now + cfg.time_limit
                    continue
                if now < deadline:
                    continue
                # Stalled: flag the teardown first so any effect the
                # engine still processes aborts, then interrupt the
                # engine thread itself.  Disarm so we fire exactly once.
                self._tearing_down = True
                self._wd_armed = False
                if self._engine_thread is not None:
                    interrupt_thread(self._engine_thread)


coopc.register_effects(CoopScheduler)
