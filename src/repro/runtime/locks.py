"""Instrumented locks for the model-checking runtime.

:class:`Lock` is a non-reentrant mutex whose acquire/release are scheduling
points, like a .NET ``Monitor``/lock statement under CHESS.  Two features
the paper's case studies depend on:

* ``acquire(timeout=True)`` models a lock acquire that *may* time out.  The
  timeout is a bounded nondeterministic decision resolved by the scheduler
  (:meth:`Scheduler.choose`), so exhaustive exploration covers both the
  success and the timeout path.  This is exactly the mechanism behind the
  paper's Figure 1 bug, where a ``TryTake`` accidentally used a timed lock
  acquire and reported failure on timeout.
* ``wait_for(predicate)`` is a condition-variable wait: it releases the
  lock, blocks until the predicate holds, and reacquires.  Because blocking
  is predicate-based there are no lost wakeups; implementations still must
  re-check their condition after waking, as with real monitors.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime.memory import _Location
from repro.runtime.errors import SchedulerError
from repro.runtime.scheduler import Scheduler

__all__ = ["Lock"]


class Lock(_Location):
    """A non-reentrant mutex controlled by the model-checking scheduler."""

    def __init__(self, scheduler: Scheduler, name: str = "lock") -> None:
        super().__init__(scheduler, name)
        self._owner: int | None = None

    @property
    def held(self) -> bool:
        return self._owner is not None

    def holder(self) -> int | None:
        """Logical thread currently owning the lock, or None."""
        return self._owner

    def acquire(self) -> None:
        """Block until the lock is available, then take it."""
        sched = self._scheduler
        tid = sched.current_thread()
        if self._owner == tid:
            raise SchedulerError(f"thread {tid} re-acquired non-reentrant {self.name}")
        sched.block_until(lambda: self._owner is None)
        self._owner = tid
        self._record("acquire", True)

    def try_acquire(self) -> bool:
        """Take the lock iff it is free right now; never blocks."""
        sched = self._scheduler
        sched.schedule_point()
        if self._owner is None:
            self._owner = sched.current_thread()
            self._record("acquire", True)
            return True
        self._record("cas-fail", True)
        return False

    def acquire_timed(self) -> bool:
        """Acquire with a timeout; the timeout firing is nondeterministic.

        Returns True when the lock was taken, False when the (modelled)
        timeout fired first.  When the lock is free the acquire always
        succeeds; under contention the scheduler enumerates both waiting
        until the lock frees up and giving up.
        """
        sched = self._scheduler
        sched.schedule_point()
        while self._owner is not None:
            if sched.choose(2) == 1:
                self._record("cas-fail", True)
                return False
            sched.block_until(lambda: self._owner is None)
        self._owner = sched.current_thread()
        self._record("acquire", True)
        return True

    def release(self) -> None:
        """Release the lock; only the owner may do so."""
        sched = self._scheduler
        tid = sched.current_thread()
        sched.schedule_point()
        if self._owner != tid:
            raise SchedulerError(
                f"thread {tid} released {self.name} owned by {self._owner}"
            )
        self._record("release", True)
        self._owner = None

    def __enter__(self) -> "Lock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def wait_for(self, predicate: Callable[[], bool]) -> None:
        """Condition wait: hold the lock, wait until *predicate*, reacquire.

        Must be called with the lock held.  On return the lock is held and
        the predicate was true at the instant the lock was reacquired; as
        with real condition variables, callers that race with other
        consumers should loop.
        """
        sched = self._scheduler
        tid = sched.current_thread()
        if self._owner != tid:
            raise SchedulerError("wait_for requires the lock to be held")
        while True:
            self.release()
            sched.block_until(lambda: predicate())
            self.acquire()
            if predicate():
                return
