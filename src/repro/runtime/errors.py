"""Exception types used by the model-checking runtime.

The runtime distinguishes three kinds of abnormal control flow:

* :class:`ExecutionAbort` — an internal signal used to unwind logical
  threads when the scheduler tears down a stuck (deadlocked) execution so
  that worker threads can be reused.  It derives from ``BaseException`` on
  purpose, so that ``except Exception`` handlers inside the code under test
  cannot swallow it.
* :class:`SchedulerError` — misuse of the runtime API (for example calling
  a scheduling primitive from a thread the scheduler does not control).
* :class:`DecisionReplayError` — a replayed execution diverged from its
  recorded decision trace (nondeterminism outside the instrumented
  primitives).

Livelocks and diverging loops are *not* exceptions: exceeding the step
budget marks the execution as a stuck history (``stuck_kind ==
"livelock"``), in line with the paper's treatment of divergence.
"""

from __future__ import annotations


class ExecutionAbort(BaseException):
    """Internal signal: unwind this logical thread, the execution is over.

    Raised inside a controlled thread when the scheduler abandons the
    current execution (for example because every live thread is blocked).
    User code must never catch this; it derives from ``BaseException`` so
    that broad ``except Exception`` clauses do not intercept it.
    """


class SchedulerError(RuntimeError):
    """The model-checking runtime was used incorrectly."""


class DecisionReplayError(SchedulerError):
    """A replayed execution diverged from the recorded decision trace.

    This indicates nondeterminism in the code under test that is not
    mediated by the runtime (wall-clock time, ambient randomness, iteration
    over sets with unstable order, ...).  Stateless model checking requires
    the decision trace to fully determine the execution.
    """
