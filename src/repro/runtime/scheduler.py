"""A stateless model-checking scheduler for Python (the CHESS substitute).

The paper builds Line-Up on top of the CHESS stateless model checker, which
enumerates thread schedules of .NET code by context-switching only at
instrumented synchronization points.  This module provides the equivalent
substrate for Python:

* Logical threads are real ``threading.Thread`` workers, but they are
  *serialized*: a baton (one semaphore per worker) guarantees that exactly
  one logical thread executes at any instant.  The GIL is therefore
  irrelevant — interleaving is fully controlled by the scheduler, at the
  granularity of the instrumented operations, exactly as CHESS controls
  interleaving at the granularity of synchronization events.
* Every instrumented primitive (volatile read/write, CAS, lock acquire,
  ...) calls :meth:`Scheduler.schedule_point` before touching shared state.
  At such a point the scheduler may transfer the baton to another enabled
  logical thread.  Which thread continues is a *decision*; the sequence of
  decisions fully determines the execution, which is what makes stateless
  replay-based exploration possible.
* Blocking primitives call :meth:`Scheduler.block_until`; a blocked thread
  is re-enabled when its predicate holds.  If no thread is enabled the
  execution is *stuck* (a deadlock), which Line-Up's generalized
  linearizability definition treats as an observable outcome rather than
  a test-harness failure.
* Bounded nondeterminism inside the implementation under test (for example
  a lock acquire that may time out) is modelled with
  :meth:`Scheduler.choose`, which is a decision like any other and is
  enumerated by the exploration strategies.

Two scheduling modes correspond to the two phases of the Line-Up check:

* **serial mode** (phase 1): context switches happen only at operation
  boundaries; an operation that blocks makes the whole execution stuck
  immediately (a *stuck serial history* in the paper's terminology).
* **concurrent mode** (phase 2): every scheduling point is a potential
  context switch, optionally preemption-bounded.

Workers are pooled and reused across executions; a stuck execution is torn
down by aborting the still-blocked workers with :class:`ExecutionAbort`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.runtime.errors import (
    DecisionReplayError,
    ExecutionAbort,
    SchedulerError,
)
from repro.runtime.watchdog import WatchdogConfig, interrupt_thread

__all__ = [
    "Decision",
    "ExecutionOutcome",
    "Scheduler",
    "THREAD_NAMES",
    "thread_name",
]

#: Display names for logical threads, matching the paper's A/B/C convention.
THREAD_NAMES = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def thread_name(tid: int) -> str:
    """Return the display name for logical thread *tid* (0 -> 'A', ...)."""
    if 0 <= tid < len(THREAD_NAMES):
        return THREAD_NAMES[tid]
    return f"T{tid}"


# Worker / logical-thread states.
_UNSTARTED = "unstarted"  # body assigned, never scheduled
_RUNNABLE = "runnable"  # started, not blocked (may or may not hold baton)
_BLOCKED = "blocked"  # waiting inside block_until
_DONE = "done"  # body finished (or aborted) for this execution


class Decision:
    """One decision made during an execution.

    ``kind`` is ``"thread"`` (which logical thread continues) or ``"value"``
    (a bounded nondeterministic choice made by the code under test).
    ``options`` is the tuple of alternatives that were available, ``chosen``
    the selected element, and ``running`` the logical thread that held the
    baton when the decision was made (``None`` for the initial decision).
    ``free`` marks decisions at operation boundaries of the test harness:
    switching threads there is part of enumerating operation interleavings
    and is *not* counted as a preemption by bounded strategies (preemptions
    are switches away from a thread that is mid-operation and enabled).

    Hand-rolled rather than a frozen dataclass: one is created per
    scheduling step of every execution, so construction cost is a
    per-step tax on both engines.  Treat instances as immutable.
    """

    __slots__ = ("kind", "options", "chosen", "running", "free")

    def __init__(
        self,
        kind: str,
        options: tuple,
        chosen: Any,
        running: int | None,
        free: bool = False,
    ) -> None:
        self.kind = kind
        self.options = options
        self.chosen = chosen
        self.running = running
        self.free = free

    def __repr__(self) -> str:
        return (
            f"Decision(kind={self.kind!r}, options={self.options!r}, "
            f"chosen={self.chosen!r}, running={self.running!r}, "
            f"free={self.free!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Decision:
            return NotImplemented
        return (
            self.kind == other.kind
            and self.options == other.options
            and self.chosen == other.chosen
            and self.running == other.running
            and self.free == other.free
        )

    def __hash__(self) -> int:
        return hash(
            (self.kind, self.options, self.chosen, self.running, self.free)
        )


@dataclass
class ExecutionOutcome:
    """Everything observable about one terminated (or stuck) execution."""

    status: str  #: ``"complete"``, ``"stuck"`` or ``"divergent"``
    stuck_kind: str | None = None  #: ``"deadlock"``, ``"livelock"`` or None
    decisions: list[Decision] = field(default_factory=list)
    events: list[Any] = field(default_factory=list)
    accesses: list[Any] = field(default_factory=list)
    #: per entry of ``accesses``/``events``: the index of the decision
    #: whose step performed it (the *segment*).  The segment attributes
    #: every observable effect to the scheduling step that produced it,
    #: which is what the reduction strategies need to derive per-step
    #: read/write footprints (see :mod:`repro.reduction.dependence`).
    access_segments: list[int] = field(default_factory=list)
    event_segments: list[int] = field(default_factory=list)
    steps: int = 0
    #: logical threads that had not finished their body when the execution
    #: got stuck (empty for complete executions).
    pending_threads: tuple[int, ...] = ()
    #: (thread id, exception) pairs for bodies that raised out of the
    #: harness; normally empty because the harness captures exceptions.
    crashes: list[tuple[int, BaseException]] = field(default_factory=list)

    def record_access(self, payload: Any) -> None:
        """Append an access record, attributed to the current segment."""
        self.accesses.append(payload)
        self.access_segments.append(len(self.decisions) - 1)

    def record_event(self, payload: Any) -> None:
        """Append a harness event, attributed to the current segment."""
        self.events.append(payload)
        self.event_segments.append(len(self.decisions) - 1)

    def accesses_by_decision(self) -> list[list[Any]]:
        """Per-step access summary: accesses grouped by decision index."""
        out: list[list[Any]] = [[] for _ in self.decisions]
        for payload, segment in zip(self.accesses, self.access_segments):
            if 0 <= segment < len(out):
                out[segment].append(payload)
        return out

    def events_by_decision(self) -> list[list[Any]]:
        """Per-step event summary: harness events grouped by decision."""
        out: list[list[Any]] = [[] for _ in self.decisions]
        for payload, segment in zip(self.events, self.event_segments):
            if 0 <= segment < len(out):
                out[segment].append(payload)
        return out

    @property
    def stuck(self) -> bool:
        return self.status == "stuck"

    @property
    def divergent(self) -> bool:
        """True when the watchdog cut this execution off mid-operation."""
        return self.status == "divergent"


class _Worker:
    """A pooled OS thread hosting one logical thread per execution."""

    def __init__(self, scheduler: "Scheduler", slot: int) -> None:
        self.scheduler = scheduler
        self.slot = slot
        self.baton = threading.Semaphore(0)
        # Teardown handshake: set when this worker has observed an abort
        # and parked itself again.  Per-worker (not a shared semaphore) so
        # the controller can tell exactly which worker failed to
        # acknowledge within the bounded wait and abandon just that one.
        self.ack = threading.Event()
        # An abandoned worker lost its pool slot (it never acknowledged an
        # abort — typically wedged in a blocking C call); when it finally
        # wakes it must exit its loop without touching scheduler state.
        self.abandoned = False
        self.body: Callable[[], None] | None = None
        self.tid: int = -1
        self.state: str = _DONE
        self.predicate: Callable[[], bool] | None = None
        # True until the body reaches its first scheduling point.  That
        # point is redundant: the decision that scheduled this body already
        # chose it, and no shared access happened in between, so branching
        # again would only enumerate duplicate interleavings.
        self.fresh = False
        # Set by spin_wait: the thread stays disabled until another thread
        # makes progress (fair scheduling for spin loops, see the paper's
        # Section 4 note that "support for fairness is important").
        self.yielded = False
        self._shutdown = False
        self.os_thread = threading.Thread(
            target=self._loop, name=f"lineup-worker-{slot}", daemon=True
        )
        self.os_thread.start()

    def enabled(self) -> bool:
        """Whether this logical thread could be scheduled right now."""
        if self.yielded:
            return False
        if self.state in (_UNSTARTED, _RUNNABLE):
            return True
        if self.state == _BLOCKED:
            assert self.predicate is not None
            return bool(self.predicate())
        return False

    def _loop(self) -> None:
        sched = self.scheduler
        while True:
            self.baton.acquire()
            if self._shutdown:
                return
            assert self.body is not None
            self.state = _RUNNABLE
            try:
                self.body()
            except ExecutionAbort:
                pass
            except BaseException as exc:  # harness bug or uncaught user error
                sched._record_crash(self.tid, exc)
            self.state = _DONE
            self.predicate = None
            self.body = None
            # Read order matters: ``_tearing_down`` before ``abandoned``.
            # The controller abandons a worker *before* clearing
            # ``_tearing_down``, so a worker that sees the flag already
            # cleared is guaranteed to see ``abandoned`` set — it can never
            # mistake a finished teardown for a live execution and corrupt
            # the next one with a spurious completion.
            tearing_down = sched._tearing_down
            if self.abandoned:
                self.ack.set()
                return
            if tearing_down:
                self.ack.set()
            else:
                sched._on_thread_done()

    def shutdown(self) -> None:
        self._shutdown = True
        self.baton.release()


class Scheduler:
    """Enumerates thread interleavings of instrumented Python code.

    One scheduler owns a pool of worker threads and is reused across many
    executions and tests.  It is not itself thread-safe: drive it from a
    single controller thread (typically the pytest process) via
    :meth:`explore` or :meth:`execute`.
    """

    #: Engine name, for dispatching code that cares which substrate runs
    #: the logical threads (see ``repro.runtime.coop`` for the other one).
    engine = "baton"

    def __init__(
        self,
        max_steps: int = 20_000,
        watchdog: WatchdogConfig | float | None = None,
        abort_timeout: float = 10.0,
    ) -> None:
        if max_steps <= 0:
            raise ValueError("max_steps must be positive")
        if abort_timeout < 0:
            raise ValueError("abort_timeout must be >= 0")
        if isinstance(watchdog, (int, float)) and not isinstance(watchdog, bool):
            watchdog = WatchdogConfig(time_limit=float(watchdog))
        self.max_steps = max_steps
        self.watchdog = watchdog
        self.abort_timeout = abort_timeout
        self._workers: list[_Worker] = []
        self._main = threading.Semaphore(0)
        self._local = threading.local()
        # Monotonic progress counter, bumped by steps, baton handovers and
        # thread completions.  The watchdog declares an execution divergent
        # when this stops moving for ``watchdog.time_limit`` seconds.
        # Lost increments under concurrent bumps are harmless: the watchdog
        # only cares whether the value *changed*.
        self._progress_ticks = 0
        # Location ids are issued per execution (reset after each one, so
        # factory-time allocations for the *next* execution restart at 1).
        self._location_serial = 0
        # Per-execution state.
        self._active: list[_Worker] = []
        self._strategy = None
        self._serial = False
        self._outcome: ExecutionOutcome | None = None
        self._running: _Worker | None = None
        self._tearing_down = False
        self._in_execution = False
        # Snapshot taken at stuck-time, while only one thread runs and all
        # other states are stable: workers that will acknowledge the abort,
        # and workers that never started (cleaned up without a handshake).
        self._abort_acks: list[_Worker] = []
        self._abort_unstarted: list[_Worker] = []

    # ------------------------------------------------------------------
    # Controller-side API
    # ------------------------------------------------------------------

    def execute(
        self,
        bodies: Sequence[Callable[[], None]],
        strategy: "SchedulingStrategy",
        serial: bool = False,
    ) -> ExecutionOutcome:
        """Run one execution of *bodies* under *strategy*'s decisions.

        Each element of *bodies* becomes a logical thread.  Returns the
        :class:`ExecutionOutcome`; the scheduler itself is ready for the
        next execution afterwards.
        """
        if self._in_execution:
            raise SchedulerError("execute() is not reentrant")
        if not bodies:
            raise SchedulerError("at least one thread body is required")
        self._in_execution = True
        try:
            return self._execute(list(bodies), strategy, serial)
        finally:
            self._in_execution = False

    def explore(
        self,
        bodies_factory: Callable[[], Sequence[Callable[[], None]]],
        strategy: "SchedulingStrategy",
        serial: bool = False,
        max_executions: int | None = None,
    ) -> Iterator[ExecutionOutcome]:
        """Yield outcomes for every execution the strategy wants to run.

        *bodies_factory* must build a fresh program (fresh object under
        test, fresh closures) for every execution — this is what makes the
        exploration *stateless* in the CHESS sense.
        """
        count = 0
        while strategy.more():
            if max_executions is not None and count >= max_executions:
                return
            yield self.execute(bodies_factory(), strategy, serial=serial)
            count += 1

    def shutdown(self) -> None:
        """Terminate the pooled worker threads."""
        for worker in self._workers:
            worker.shutdown()
        for worker in self._workers:
            worker.os_thread.join(timeout=5)
        self._workers = []

    # ------------------------------------------------------------------
    # Controlled-thread API (called from inside the code under test)
    # ------------------------------------------------------------------

    def current_thread(self) -> int:
        """Logical thread id of the caller (0-based)."""
        worker = getattr(self._local, "worker", None)
        if worker is None:
            raise SchedulerError("not running on a scheduler-controlled thread")
        return worker.tid

    def thread_count(self) -> int:
        """Number of logical threads in the current execution."""
        return len(self._active)

    def schedule_point(self, boundary: bool = False) -> None:
        """A potential context switch before a shared-state access.

        In serial mode only *boundary* points (between operations of the
        test) allow a switch; interior points return immediately so that
        operations execute atomically, producing serial histories.
        """
        worker = self._require_worker()
        self._progress(worker)
        if worker.fresh:
            worker.fresh = False
            return
        self._bump_step()
        if self._serial and not boundary:
            return
        self._transfer(worker, free=boundary)

    def block_until(
        self, predicate: Callable[[], bool], harness: bool = False
    ) -> None:
        """Block the calling logical thread until *predicate* holds.

        The predicate must be a pure function of instrumented shared state.
        In serial mode a false predicate makes the execution stuck at once,
        because a serial history cannot overlap another operation with the
        pending one (this yields the paper's stuck serial histories) —
        except for *harness* waits (``harness=True``), which are test
        infrastructure (e.g. "wait for every column before the final
        sequence") and block normally in both modes.
        """
        worker = self._require_worker()
        self._progress(worker)
        if worker.fresh:
            worker.fresh = False
        else:
            self._bump_step()
            if not self._serial:
                # The wait itself is a scheduling point even when it would
                # not block, mirroring CHESS's instrumented sync operations.
                self._transfer(worker)
        while not predicate():
            if self._serial and not harness:
                self._finish_stuck("deadlock")
                raise ExecutionAbort()
            worker.state = _BLOCKED
            worker.predicate = predicate
            self._transfer(worker)
            # When rescheduled, the predicate held at scheduling time and
            # nothing ran since, so the loop exits unless it was aborted.

    def choose(self, n: int) -> int:
        """Resolve a bounded nondeterministic choice in the code under test.

        Returns an integer in ``range(n)``.  Exploration strategies
        enumerate or sample the alternatives exactly like thread decisions;
        this models, for example, a lock acquire that may time out.
        """
        worker = self._require_worker()
        if n <= 0:
            raise ValueError("choose() needs at least one alternative")
        worker.fresh = False  # a value decision is never redundant
        self._progress(worker)
        self._bump_step()
        if n == 1:
            return 0
        return self._decide("value", tuple(range(n)), worker.tid)

    def yield_point(self) -> None:
        """An explicit yield (spin-wait hint); same as a scheduling point."""
        self.schedule_point()

    def spin_wait(self) -> None:
        """Fair spin-loop backoff: yield until another thread progresses.

        The calling thread becomes disabled until some other thread
        executes a scheduling step, which is the fair-scheduling support
        the paper notes is "important because many of the concurrent data
        types use spin-loops": without it, exhaustive exploration of a
        spin loop degenerates into livelock.  In serial mode a spin wait
        can never be satisfied (no other operation may overlap), so the
        execution is immediately stuck, like a blocking operation.
        """
        worker = self._require_worker()
        self._progress(worker)
        worker.fresh = False
        self._bump_step()
        if self._serial:
            self._finish_stuck("livelock")
            raise ExecutionAbort()
        worker.yielded = True
        self._transfer(worker)

    def record_event(self, payload: Any) -> None:
        """Append a harness-level event (call/return) to the execution."""
        outcome = self._current_outcome()
        outcome.record_event(payload)

    def record_access(self, payload: Any) -> None:
        """Append a memory-access record for the analysis tools."""
        outcome = self._current_outcome()
        outcome.record_access(payload)

    def new_location_id(self) -> int:
        """Issue the next location id for an instrumented cell or lock.

        Ids restart from 1 after every execution, so a location allocated
        by a deterministic factory gets the *same* id in every execution
        (and in every process).  That stability is what lets the
        reduction layer compare step footprints across executions; a
        process-global counter would make them incomparable.
        """
        self._location_serial += 1
        return self._location_serial

    @property
    def serial_mode(self) -> bool:
        return self._serial

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require_worker(self) -> _Worker:
        worker = getattr(self._local, "worker", None)
        if worker is None or worker.scheduler is not self:
            raise SchedulerError("not running on a scheduler-controlled thread")
        if self._tearing_down:
            # The execution is being torn down (it got stuck); any cleanup
            # code running on the unwind path (context managers, finally
            # blocks) must abort rather than touch scheduler state, or it
            # would clobber the ExecutionAbort with spurious errors.
            raise ExecutionAbort()
        return worker

    def _current_outcome(self) -> ExecutionOutcome:
        if self._outcome is None:
            raise SchedulerError("no execution in progress")
        return self._outcome

    def _progress(self, worker: _Worker) -> None:
        """*worker* made progress: re-enable threads spin-waiting on it."""
        for other in self._active:
            if other is not worker:
                other.yielded = False

    def _bump_step(self) -> None:
        outcome = self._current_outcome()
        outcome.steps += 1
        self._progress_ticks += 1
        if outcome.steps > self.max_steps:
            self._finish_stuck("livelock")
            raise ExecutionAbort()

    def _record_crash(self, tid: int, exc: BaseException) -> None:
        if self._outcome is not None:
            self._outcome.crashes.append((tid, exc))

    def _ensure_workers(self, n: int) -> None:
        while len(self._workers) < n:
            self._workers.append(_Worker(self, len(self._workers)))

    def _execute(
        self,
        bodies: list[Callable[[], None]],
        strategy: "SchedulingStrategy",
        serial: bool,
    ) -> ExecutionOutcome:
        self._ensure_workers(len(bodies))
        self._active = self._workers[: len(bodies)]
        for tid, (worker, body) in enumerate(zip(self._active, bodies)):
            worker.tid = tid
            worker.body = self._wrap_body(worker, body)
            worker.state = _UNSTARTED
            worker.predicate = None
            worker.fresh = True
            worker.yielded = False
            worker.ack.clear()
        self._strategy = strategy
        self._serial = serial
        self._outcome = ExecutionOutcome(status="complete")
        self._running = None
        self._tearing_down = False
        strategy.begin()

        first = self._pick_next()
        if first is None:  # pragma: no cover - bodies is non-empty
            raise SchedulerError("no thread enabled at execution start")
        self._hand_baton(first)
        self._await_completion()
        self._teardown()
        outcome = self._outcome
        assert outcome is not None
        strategy.finish(outcome)
        self._outcome = None
        self._strategy = None
        # Reset here (not at execute() entry): the bodies factory for the
        # next execution runs *before* execute() and already allocates
        # instrumented locations, which must start from 1 again.
        self._location_serial = 0
        return outcome

    def _wrap_body(self, worker: _Worker, body: Callable[[], None]):
        def run() -> None:
            self._local.worker = worker
            body()

        return run

    def _hand_baton(self, worker: _Worker) -> None:
        self._running = worker
        self._progress_ticks += 1
        worker.baton.release()

    def _await_completion(self) -> None:
        """Wait for the execution to finish, policing it with the watchdog.

        Without a watchdog this is a plain blocking wait (an operation that
        loops in uninstrumented code then hangs the process — the pre-
        watchdog behaviour).  With one, the controller polls: whenever
        ``_progress_ticks`` stalls for ``time_limit`` seconds the running
        logical thread is deemed wedged and the execution is torn down as
        *divergent*.
        """
        cfg = self.watchdog
        if cfg is None:
            self._main.acquire()
            return
        ticks = self._progress_ticks
        deadline = time.monotonic() + cfg.time_limit
        while True:
            if self._main.acquire(timeout=cfg.poll_interval):
                return
            now = time.monotonic()
            seen = self._progress_ticks
            if seen != ticks:
                ticks = seen
                deadline = now + cfg.time_limit
                continue
            if now < deadline:
                continue
            # Stalled.  Raise the teardown flag first: any worker that
            # reaches an instrumented point from here on aborts instead of
            # mutating scheduler state.  Then grant one grace poll in case
            # the execution was completing at this very instant.
            self._tearing_down = True
            if self._main.acquire(timeout=cfg.poll_interval):
                outcome = self._current_outcome()
                if outcome.status == "complete":
                    # Genuine completion that raced the watchdog: the flag
                    # was never observed by anyone (all bodies already
                    # finished), so clear it and carry on.
                    self._tearing_down = False
                return
            self._finish_divergent(cfg)
            return

    def _enabled_tids(self) -> list[int]:
        return [w.tid for w in self._active if w.enabled()]

    def _decide(
        self, kind: str, options: tuple, running: int | None, free: bool = False
    ) -> Any:
        strategy = self._strategy
        assert strategy is not None
        outcome = self._current_outcome()
        if len(options) == 1:
            chosen = options[0]
        else:
            chosen = strategy.decide(kind, options, running, free)
            if chosen not in options:
                raise SchedulerError(
                    f"strategy chose {chosen!r}, not among options {options!r}"
                )
        outcome.decisions.append(Decision(kind, options, chosen, running, free))
        return chosen

    def _transfer(self, worker: _Worker, free: bool = False) -> None:
        """Pick the next thread to run and pass the baton if it changed."""
        enabled = self._enabled_tids()
        if not enabled:
            # If some thread is merely spin-yielded (it would be enabled
            # were it not waiting for others to progress), everyone is
            # spinning on everyone: a livelock rather than a deadlock.
            spinning = any(
                w.yielded and (w.state in (_UNSTARTED, _RUNNABLE)
                               or (w.state == _BLOCKED and w.predicate()))
                for w in self._active
            )
            self._finish_stuck("livelock" if spinning else "deadlock")
            raise ExecutionAbort()
        chosen = self._decide("thread", tuple(enabled), worker.tid, free)
        if chosen == worker.tid:
            worker.state = _RUNNABLE
            worker.predicate = None
            return
        target = self._active[chosen]
        self._hand_baton(target)
        worker.baton.acquire()
        if self._tearing_down:
            raise ExecutionAbort()
        worker.state = _RUNNABLE
        worker.predicate = None

    def _pick_next(self) -> _Worker | None:
        enabled = self._enabled_tids()
        if not enabled:
            return None
        running = self._running.tid if self._running is not None else None
        chosen = self._decide("thread", tuple(enabled), running, free=True)
        return self._active[chosen]

    def _on_thread_done(self) -> None:
        """Called from a worker whose body just finished."""
        self._progress_ticks += 1
        if all(w.state == _DONE for w in self._active):
            self._main.release()
            return
        # A thread completing is progress: re-enable spin-yielded threads.
        for worker in self._active:
            worker.yielded = False
        nxt = self._pick_next()
        if nxt is None:
            self._finish_stuck("deadlock")
            return
        self._hand_baton(nxt)

    def _finish_stuck(self, kind: str) -> None:
        """Mark the current execution stuck and wake the controller.

        Called from the running worker; the caller is responsible for
        raising :class:`ExecutionAbort` afterwards (when mid-body).
        """
        outcome = self._current_outcome()
        outcome.status = "stuck"
        outcome.stuck_kind = kind
        outcome.pending_threads = tuple(
            w.tid for w in self._active if w.state != _DONE
        )
        # Snapshot now: the caller holds the baton, every other worker is
        # parked, so the states cannot change under us.
        self._abort_acks = [
            w for w in self._active if w.state in (_RUNNABLE, _BLOCKED)
        ]
        self._abort_unstarted = [
            w for w in self._active if w.state == _UNSTARTED
        ]
        self._tearing_down = True
        self._main.release()

    def _teardown(self) -> None:
        """Abort any workers still alive after a stuck execution.

        The wait for each worker's acknowledgement is bounded by
        ``abort_timeout``: a worker that swallows :class:`ExecutionAbort`
        (hostile cleanup code) or wedges on the unwind path is abandoned —
        its pool slot is replaced with a fresh worker — so a single bad
        execution can never poison the pool for the executions after it.
        """
        if not self._tearing_down:
            return
        for worker in self._abort_unstarted:
            # Never scheduled: clear the assignment in place; the worker is
            # parked on its baton and will not observe the body slot.
            worker.body = None
            worker.state = _DONE
        for worker in self._abort_acks:
            # The stuck-detecting worker (if mid-body) unwinds on its own;
            # parked workers need their baton released to observe the abort.
            if worker is not self._running:
                worker.baton.release()
        deadline = time.monotonic() + self.abort_timeout
        for worker in self._abort_acks:
            remaining = deadline - time.monotonic()
            if not worker.ack.wait(timeout=max(0.0, remaining)):
                self._abandon(worker)
        self._abort_acks = []
        self._abort_unstarted = []
        self._tearing_down = False
        self._running = None

    def _finish_divergent(self, cfg: WatchdogConfig) -> None:
        """Tear down a wedged execution from the controller side.

        Entered with ``_tearing_down`` already raised.  Unlike
        :meth:`_finish_stuck` this runs on the controller thread while the
        wedged worker still nominally holds the baton, so the victim is
        interrupted with an asynchronously injected
        :class:`ExecutionAbort`; workers that fail to acknowledge within
        ``abandon_timeout`` are abandoned and their pool slots replaced.
        """
        outcome = self._current_outcome()
        outcome.status = "divergent"
        outcome.stuck_kind = None
        outcome.pending_threads = tuple(
            w.tid for w in self._active if w.state != _DONE
        )
        victim = self._running
        acks = [w for w in self._active if w.state in (_RUNNABLE, _BLOCKED)]
        for worker in self._active:
            if worker.state == _UNSTARTED:
                worker.body = None
                worker.state = _DONE
        for worker in acks:
            # Parked workers observe the abort via their baton; the victim
            # is (by definition) not parked and needs the async exception.
            if worker is not victim:
                worker.baton.release()
        if victim is not None and victim in acks:
            interrupt_thread(victim.os_thread)
        deadline = time.monotonic() + cfg.abandon_timeout
        for worker in acks:
            remaining = deadline - time.monotonic()
            if not worker.ack.wait(timeout=max(0.0, remaining)):
                self._abandon(worker)
        # A completion signal may have raced the teardown; swallow it so it
        # cannot leak into the next execution's wait.
        while self._main.acquire(blocking=False):
            pass
        self._abort_acks = []
        self._abort_unstarted = []
        self._tearing_down = False
        self._running = None

    def _abandon(self, worker: _Worker) -> None:
        """Write off *worker* and put a fresh worker in its pool slot.

        Abandonment must precede clearing ``_tearing_down`` (see the read
        ordering in :meth:`_Worker._loop`).  The stale daemon thread exits
        on its own if it ever wakes; until then it is parked harmlessly.
        """
        worker.abandoned = True
        self._workers[worker.slot] = _Worker(self, worker.slot)


class SchedulingStrategy:
    """Protocol for exploration strategies (see :mod:`.strategies`)."""

    def more(self) -> bool:
        """Whether another execution should be run."""
        raise NotImplementedError

    def begin(self) -> None:
        """Called before each execution starts."""
        raise NotImplementedError

    def decide(
        self, kind: str, options: tuple, running: int | None, free: bool
    ) -> Any:
        """Return the chosen alternative for a decision point."""
        raise NotImplementedError

    def finish(self, outcome: ExecutionOutcome) -> None:
        """Called after each execution with its outcome."""
        raise NotImplementedError
