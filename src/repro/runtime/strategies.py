"""Exploration strategies for the stateless model checker.

These correspond to the search modes of CHESS that the paper relies on:

* :class:`DFSStrategy` — exhaustive depth-first enumeration of the decision
  tree with stateless replay, optionally **preemption-bounded** (the paper
  uses bound 2 for phase 2, no bound for phase 1).  A *preemption* is a
  thread decision that switches away from a thread that was still enabled;
  switches at blocking or completion points are free, matching CHESS's
  iterative context bounding.
* :class:`RandomStrategy` — random walk over the decision tree, used by the
  random sampling mode of Section 4.3.  It continues the running thread
  with high probability and preempts with probability ``preempt_prob``,
  which concentrates the samples on low-preemption schedules where (per the
  small scope hypothesis) most bugs live.
* :class:`ReplayStrategy` — replays one recorded decision sequence, used to
  reproduce a reported violation deterministically.
* :class:`IterativeDFSStrategy` — CHESS's iterative context bounding
  (exhaust preemption bound 0, then 1, ...).
* :class:`PCTStrategy` — probabilistic concurrency testing with priority
  change points, the randomized relative of the prioritized search the
  paper cites (Gambit).
"""

from __future__ import annotations

import random
from typing import Any

from repro.runtime.errors import DecisionReplayError
from repro.runtime.scheduler import Decision, ExecutionOutcome, SchedulingStrategy

__all__ = [
    "DFSStrategy",
    "IterativeDFSStrategy",
    "PCTStrategy",
    "RandomStrategy",
    "ReplayStrategy",
    "dfs_with_reduction",
    "strategy_from_snapshot",
]


class _Node:
    """One branching decision point on the current DFS path."""

    __slots__ = (
        "kind", "options", "running", "free", "chosen", "tried", "preemptions",
    )

    def __init__(
        self,
        kind: str,
        options: tuple,
        running: int | None,
        free: bool,
        chosen: Any,
        preemptions: int,
    ) -> None:
        self.kind = kind
        self.options = options
        self.running = running
        self.free = free
        self.chosen = chosen
        self.tried = {chosen}
        #: preemptions accumulated strictly before this decision.
        self.preemptions = preemptions

    def is_preemption(self, choice: Any) -> bool:
        """Whether picking *choice* here switches away from a live thread.

        Free decisions (operation boundaries of the harness) never count:
        interleaving whole operations is what the check is enumerating,
        matching the paper's use of preemption bounding only *inside*
        operations."""
        return (
            not self.free
            and self.kind == "thread"
            and self.running is not None
            and self.running in self.options
            and choice != self.running
        )


class DFSStrategy(SchedulingStrategy):
    """Exhaustive stateless DFS over the decision tree.

    The strategy keeps the current path of branching decision points.  The
    first execution follows the default policy (continue the running thread
    when possible, otherwise the lowest-numbered alternative, which adds no
    preemptions).  After each execution it backtracks to the deepest node
    with an untried alternative that fits the preemption budget.

    ``preemption_bound=None`` disables bounding (used for phase 1 so the
    completeness guarantee of Theorem 5 is preserved);
    ``preemption_bound=2`` is the paper's phase-2 default.
    """

    def __init__(self, preemption_bound: int | None = None) -> None:
        if preemption_bound is not None and preemption_bound < 0:
            raise ValueError("preemption_bound must be >= 0 or None")
        self.preemption_bound = preemption_bound
        self._stack: list[_Node] = []
        self._exhausted = False
        self._started = False
        self._depth = 0
        self.executions = 0

    def more(self) -> bool:
        return not self._exhausted

    def begin(self) -> None:
        self._depth = 0
        self._started = True

    def decide(
        self, kind: str, options: tuple, running: int | None, free: bool
    ) -> Any:
        depth = self._depth
        self._depth += 1
        if depth < len(self._stack):
            node = self._stack[depth]
            if node.kind != kind or node.options != options:
                raise DecisionReplayError(
                    f"replay diverged at depth {depth}: expected "
                    f"{node.kind}{node.options!r}, got {kind}{options!r}; "
                    "the code under test is nondeterministic outside the "
                    "instrumented primitives"
                )
            return node.chosen
        chosen = self._default_choice(kind, options, running)
        preemptions = self._preemptions_at(len(self._stack))
        node = self._make_node(kind, options, running, free, chosen, preemptions)
        # The default choice never adds a preemption (it continues the
        # running thread whenever that thread is still an option).
        self._stack.append(node)
        return chosen

    def finish(self, outcome: ExecutionOutcome) -> None:
        self.executions += 1
        self._backtrack()

    # -- internals ----------------------------------------------------

    #: node class used for the DFS stack; reduction strategies override
    #: this with an extended node carrying sleep/backtrack state.
    node_class = _Node
    #: snapshot ``type`` tag; reduction strategies override it.
    snapshot_type = "dfs"

    def _make_node(
        self,
        kind: str,
        options: tuple,
        running: int | None,
        free: bool,
        chosen: Any,
        preemptions: int,
    ) -> _Node:
        return self.node_class(kind, options, running, free, chosen, preemptions)

    @staticmethod
    def _default_choice(kind: str, options: tuple, running: int | None) -> Any:
        if kind == "thread" and running is not None and running in options:
            return running
        return options[0]

    def _preemptions_at(self, depth: int) -> int:
        count = 0
        for node in self._stack[:depth]:
            if node.is_preemption(node.chosen):
                count += 1
        return count

    def _budget_left(self, node: _Node) -> int | None:
        if self.preemption_bound is None:
            return None
        return self.preemption_bound - node.preemptions

    def _backtrack(self) -> None:
        while self._stack:
            node = self._stack[-1]
            alternative = self._next_alternative(node)
            if alternative is not None:
                node.chosen = alternative
                node.tried.add(alternative)
                return
            self._on_pop(node)
            self._stack.pop()
        self._exhausted = True

    def _on_pop(self, node: _Node) -> None:
        """Hook: *node* is exhausted and about to leave the stack."""

    def _next_alternative(self, node: _Node) -> Any | None:
        budget = self._budget_left(node)
        for option in node.options:
            if option in node.tried:
                continue
            if budget is not None and node.is_preemption(option) and budget < 1:
                continue
            return option
        return None

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able snapshot of the DFS frontier, taken between executions.

        The stack (post-backtrack) *is* the resume point: replaying its
        chosen prefix reproduces the next unexplored execution, and all
        decision payloads are small integers (thread ids / choice indices),
        so the snapshot round-trips through JSON losslessly.
        """
        return {
            "type": self.snapshot_type,
            "preemption_bound": self.preemption_bound,
            "exhausted": self._exhausted,
            "executions": self.executions,
            "stack": [
                [
                    node.kind,
                    list(node.options),
                    node.running,
                    node.free,
                    node.chosen,
                    sorted(node.tried),
                    node.preemptions,
                ]
                for node in self._stack
            ],
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "DFSStrategy":
        strategy = cls(preemption_bound=snap["preemption_bound"])
        strategy._exhausted = bool(snap["exhausted"])
        strategy.executions = int(snap["executions"])
        for kind, options, running, free, chosen, tried, preemptions in snap[
            "stack"
        ]:
            node = cls.node_class(
                kind, tuple(options), running, free, chosen, preemptions
            )
            node.tried = set(tried)
            strategy._stack.append(node)
        return strategy


class RandomStrategy(SchedulingStrategy):
    """Random walk sampling of schedules, seeded for reproducibility.

    Runs exactly *executions* random executions.  At thread decisions the
    running thread continues with probability ``1 - preempt_prob``; other
    alternatives (including switches at blocking points, which are free)
    are picked uniformly.  Value decisions are uniform.
    """

    def __init__(
        self,
        executions: int,
        seed: int = 0,
        preempt_prob: float = 0.25,
    ) -> None:
        if executions < 0:
            raise ValueError("executions must be >= 0")
        if not 0.0 <= preempt_prob <= 1.0:
            raise ValueError("preempt_prob must be within [0, 1]")
        self._remaining = executions
        self._rng = random.Random(seed)
        self.preempt_prob = preempt_prob
        self.executions = 0

    def more(self) -> bool:
        return self._remaining > 0

    def begin(self) -> None:
        pass

    def decide(
        self, kind: str, options: tuple, running: int | None, free: bool
    ) -> Any:
        if free:
            # Operation boundary: interleave whole operations uniformly.
            return self._rng.choice(list(options))
        if kind == "thread" and running is not None and running in options:
            others = [o for o in options if o != running]
            if others and self._rng.random() < self.preempt_prob:
                return self._rng.choice(others)
            return running
        return self._rng.choice(list(options))

    def finish(self, outcome: ExecutionOutcome) -> None:
        self._remaining -= 1
        self.executions += 1

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "type": "random",
            "remaining": self._remaining,
            "preempt_prob": self.preempt_prob,
            "executions": self.executions,
            "rng": _rng_state_to_json(self._rng),
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "RandomStrategy":
        strategy = cls(
            executions=int(snap["remaining"]),
            preempt_prob=snap["preempt_prob"],
        )
        strategy.executions = int(snap["executions"])
        _rng_state_from_json(strategy._rng, snap["rng"])
        return strategy


class ReplayStrategy(SchedulingStrategy):
    """Replay one recorded decision sequence (for violation reproduction)."""

    def __init__(self, decisions: list[Decision]) -> None:
        # Only branching decisions reach the strategy; forced single-option
        # decisions are recorded in outcomes but recomputed during replay.
        self._script = [d for d in decisions if len(d.options) > 1]
        self._index = 0
        self._done = False

    def more(self) -> bool:
        return not self._done

    def begin(self) -> None:
        self._index = 0

    def decide(
        self, kind: str, options: tuple, running: int | None, free: bool
    ) -> Any:
        if self._index >= len(self._script):
            raise DecisionReplayError(
                "replay script exhausted: execution has more decision points "
                "than the recorded one"
            )
        decision = self._script[self._index]
        self._index += 1
        if decision.kind != kind or decision.options != options:
            raise DecisionReplayError(
                f"replay diverged at decision {self._index - 1}: recorded "
                f"{decision.kind}{decision.options!r}, got {kind}{options!r}"
            )
        return decision.chosen

    def finish(self, outcome: ExecutionOutcome) -> None:
        self._done = True


class IterativeDFSStrategy(SchedulingStrategy):
    """Iterative context bounding: exhaust bound 0, then 1, then 2, ...

    This is CHESS's actual search order (Musuvathi & Qadeer, "Iterative
    context bounding for systematic testing of multithreaded programs"):
    schedules with few preemptions are explored first, so the simplest
    witness of a bug is found before the search drowns in high-preemption
    interleavings.  Schedules already covered by a smaller bound are
    re-explored at the larger one — the re-execution cost CHESS also pays
    in exchange for statelessness.
    """

    def __init__(self, max_bound: int = 2, reduction: str = "none") -> None:
        if max_bound < 0:
            raise ValueError("max_bound must be >= 0")
        self.max_bound = max_bound
        self.reduction = reduction
        self.bound = 0
        self._inner = dfs_with_reduction(reduction, preemption_bound=0)
        self._pruned_done = 0
        self.executions = 0

    @property
    def pruned(self) -> int:
        """Schedules pruned by the reduction, across all bounds so far."""
        return self._pruned_done + getattr(self._inner, "pruned", 0)

    def more(self) -> bool:
        while not self._inner.more():
            if self.bound >= self.max_bound:
                return False
            self.bound += 1
            self._pruned_done += getattr(self._inner, "pruned", 0)
            self._inner = dfs_with_reduction(
                self.reduction, preemption_bound=self.bound
            )
        return True

    def begin(self) -> None:
        self._inner.begin()

    def decide(
        self, kind: str, options: tuple, running: int | None, free: bool
    ) -> Any:
        return self._inner.decide(kind, options, running, free)

    def finish(self, outcome: ExecutionOutcome) -> None:
        self._inner.finish(outcome)
        self.executions += 1

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "type": "iterative",
            "max_bound": self.max_bound,
            "reduction": self.reduction,
            "bound": self.bound,
            "pruned_done": self._pruned_done,
            "executions": self.executions,
            "inner": self._inner.snapshot(),
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "IterativeDFSStrategy":
        strategy = cls(
            max_bound=int(snap["max_bound"]),
            reduction=snap.get("reduction", "none"),
        )
        strategy.bound = int(snap["bound"])
        strategy._pruned_done = int(snap.get("pruned_done", 0))
        strategy.executions = int(snap["executions"])
        strategy._inner = strategy_from_snapshot(snap["inner"])
        return strategy


class PCTStrategy(SchedulingStrategy):
    """Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS 2010).

    The prioritized-search relative of the Gambit work the paper cites
    for CHESS's search heuristics.  Each execution assigns the logical
    threads random *priorities* and picks ``depth - 1`` random *change
    points*; scheduling always runs the highest-priority enabled thread,
    and crossing a change point demotes the running thread below
    everything else.  For a bug of depth d (d ordering constraints), one
    execution finds it with probability >= 1/(n * k^(d-1)) for n threads
    and k steps — a guarantee random walks lack.

    The step-count estimate ``k`` is learned online from the executions
    seen so far.
    """

    def __init__(self, executions: int, depth: int = 3, seed: int = 0) -> None:
        if executions < 0:
            raise ValueError("executions must be >= 0")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self._remaining = executions
        self.depth = depth
        self._rng = random.Random(seed)
        self._steps_estimate = 32
        self._step = 0
        self._priorities: dict[int, float] = {}
        self._change_points: list[int] = []
        self._demotions = 0
        self.executions = 0

    def more(self) -> bool:
        return self._remaining > 0

    def begin(self) -> None:
        self._step = 0
        self._priorities = {}
        self._demotions = 0
        self._change_points = sorted(
            self._rng.randrange(1, max(2, self._steps_estimate))
            for _ in range(self.depth - 1)
        )

    def _priority(self, thread: int) -> float:
        if thread not in self._priorities:
            self._priorities[thread] = self._rng.random() + 1.0
        return self._priorities[thread]

    def decide(
        self, kind: str, options: tuple, running: int | None, free: bool
    ) -> Any:
        if kind != "thread":
            return self._rng.choice(list(options))
        self._step += 1
        while self._change_points and self._step >= self._change_points[0]:
            self._change_points.pop(0)
            if running is not None:
                # Demote below every base priority (which are all >= 1.0);
                # later demotions go lower still.
                self._demotions += 1
                self._priorities[running] = 1.0 - self._demotions
        return max(options, key=self._priority)

    def finish(self, outcome: ExecutionOutcome) -> None:
        self._remaining -= 1
        self.executions += 1
        # Learn the schedule length for change-point placement.
        self._steps_estimate = max(self._steps_estimate, self._step, 1)

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> dict:
        # Per-execution state (_priorities, _change_points, ...) is reset
        # by begin(), so only the cross-execution state needs saving.
        return {
            "type": "pct",
            "remaining": self._remaining,
            "depth": self.depth,
            "executions": self.executions,
            "steps_estimate": self._steps_estimate,
            "rng": _rng_state_to_json(self._rng),
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "PCTStrategy":
        strategy = cls(executions=int(snap["remaining"]), depth=int(snap["depth"]))
        strategy.executions = int(snap["executions"])
        strategy._steps_estimate = int(snap["steps_estimate"])
        _rng_state_from_json(strategy._rng, snap["rng"])
        return strategy


def _rng_state_to_json(rng: random.Random) -> list:
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def _rng_state_from_json(rng: random.Random, state: list) -> None:
    version, internal, gauss_next = state
    rng.setstate((version, tuple(internal), gauss_next))


def dfs_with_reduction(
    reduction: str | None, preemption_bound: int | None
) -> DFSStrategy:
    """A DFS-family strategy with the requested partial-order reduction.

    ``reduction`` is ``none``/``None`` (plain DFS), ``sleep`` (sleep
    sets), or ``dpor`` (dynamic partial-order reduction).  The reduction
    classes live in :mod:`repro.reduction`, which imports this module, so
    they are imported lazily here.
    """
    if reduction in (None, "none"):
        return DFSStrategy(preemption_bound=preemption_bound)
    from repro.reduction import DPORStrategy, SleepSetStrategy

    if reduction == "sleep":
        return SleepSetStrategy(preemption_bound=preemption_bound)
    if reduction == "dpor":
        return DPORStrategy(preemption_bound=preemption_bound)
    raise ValueError(f"unknown reduction: {reduction!r} (use none, sleep, dpor)")


#: Snapshot ``type`` tag -> strategy class, for checkpoint restoration.
#: The reduction strategies register lazily (they live in a package that
#: imports this one).
_SNAPSHOT_TYPES = {
    "dfs": DFSStrategy,
    "iterative": IterativeDFSStrategy,
    "random": RandomStrategy,
    "pct": PCTStrategy,
}


def strategy_from_snapshot(snap: dict) -> SchedulingStrategy:
    """Rebuild a strategy from a :meth:`snapshot` dict (checkpoint resume).

    Raises :class:`repro.core.checkpoint.CheckpointError` when the
    snapshot's ``type`` tag is unknown — a checkpoint file written by a
    different (or newer) build is a *checkpoint* problem, not a
    programming error.
    """
    tag = snap.get("type") if isinstance(snap, dict) else None
    cls = _SNAPSHOT_TYPES.get(tag)
    if cls is None and tag in ("sleep", "dpor"):
        from repro.reduction import DPORStrategy, SleepSetStrategy

        _SNAPSHOT_TYPES.setdefault("sleep", SleepSetStrategy)
        _SNAPSHOT_TYPES.setdefault("dpor", DPORStrategy)
        cls = _SNAPSHOT_TYPES[tag]
    if cls is None and tag == "shard":
        from repro.swarm.strategy import ShardStrategy

        _SNAPSHOT_TYPES.setdefault("shard", ShardStrategy)
        cls = _SNAPSHOT_TYPES[tag]
    if cls is None:
        from repro.core.checkpoint import CheckpointError

        raise CheckpointError(f"unknown strategy snapshot: {snap!r:.80}")
    return cls.from_snapshot(snap)
