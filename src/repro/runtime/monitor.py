"""An instrumented .NET/Java-style monitor (Enter/Wait/Pulse).

Unlike :meth:`Lock.wait_for`, whose predicate-based waits can never miss
a wakeup, a :class:`Monitor` has real ``Pulse``/``PulseAll`` semantics:
signals wake *currently queued* waiters and are otherwise lost, exactly
like ``Monitor.Pulse`` in .NET or ``notify`` in Java.  That fidelity
matters for checking: the classic condition-variable bugs — waiting with
``if`` instead of ``while``, pulsing one waiter where all must wake,
pulsing before anyone waits — all become expressible, and Line-Up
detects each as a linearizability or blocking violation (see
``repro.structures.bounded_buffer`` for a worked example).

Waiters are woken in FIFO order, so executions remain deterministic
functions of the schedule, as stateless replay requires.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.errors import SchedulerError
from repro.runtime.memory import _Location
from repro.runtime.scheduler import Scheduler

__all__ = ["Monitor"]


class _WaitNode:
    """One queued waiter; ``signaled`` is flipped by Pulse/PulseAll."""

    __slots__ = ("signaled",)

    def __init__(self) -> None:
        self.signaled = False


class Monitor(_Location):
    """A mutex with condition-variable wait/pulse semantics."""

    def __init__(self, scheduler: Scheduler, name: str = "monitor") -> None:
        super().__init__(scheduler, name)
        self._owner: int | None = None
        self._waiters: list[_WaitNode] = []

    @property
    def held(self) -> bool:
        return self._owner is not None

    def enter(self) -> None:
        """Acquire the monitor lock (blocks)."""
        sched = self._scheduler
        tid = sched.current_thread()
        if self._owner == tid:
            raise SchedulerError(f"thread {tid} re-entered non-reentrant {self.name}")
        sched.block_until(lambda: self._owner is None)
        self._owner = tid
        self._record("acquire", volatile=True)

    def exit(self) -> None:
        """Release the monitor lock."""
        sched = self._scheduler
        tid = sched.current_thread()
        sched.schedule_point()
        if self._owner != tid:
            raise SchedulerError(
                f"thread {tid} exited {self.name} owned by {self._owner}"
            )
        self._record("release", volatile=True)
        self._owner = None

    def __enter__(self) -> "Monitor":
        self.enter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.exit()

    def wait(self) -> None:
        """Release the lock, wait for a pulse, reacquire (Monitor.Wait).

        A pulse that happens while this thread is *not yet* queued is
        lost — the real, missed-wakeup-capable semantics.  As with real
        monitors, the condition must be re-checked in a loop after
        waking; forgetting that is precisely the bug class this
        primitive lets Line-Up expose.
        """
        sched = self._scheduler
        tid = sched.current_thread()
        if self._owner != tid:
            raise SchedulerError("Monitor.wait requires the lock to be held")
        node = _WaitNode()
        self._waiters.append(node)
        self._record("release", volatile=True)
        self._owner = None
        sched.block_until(lambda: node.signaled)
        # Reacquire before returning, like Monitor.Wait.
        sched.block_until(lambda: self._owner is None)
        self._owner = tid
        self._record("acquire", volatile=True)

    def pulse(self) -> None:
        """Wake the longest-waiting thread, if any (Monitor.Pulse)."""
        self._signal(all_waiters=False)

    def pulse_all(self) -> None:
        """Wake every queued waiter (Monitor.PulseAll)."""
        self._signal(all_waiters=True)

    def _signal(self, all_waiters: bool) -> None:
        sched = self._scheduler
        tid = sched.current_thread()
        sched.schedule_point()
        if self._owner != tid:
            raise SchedulerError("Monitor.pulse requires the lock to be held")
        self._record("write", volatile=True)
        if all_waiters:
            for node in self._waiters:
                node.signaled = True
            self._waiters.clear()
        elif self._waiters:
            self._waiters.pop(0).signaled = True

    def waiting_count(self) -> int:
        """Number of currently queued waiters (no scheduling point)."""
        return len(self._waiters)
