"""Instrumented shared-memory cells and atomics.

The .NET implementations studied by the paper synchronize with ``volatile``
fields and ``Interlocked`` (CAS/exchange) operations; the benign data races
the paper reports (Section 5.6) are exactly races on fields that *should*
have been volatile but could not be declared so in C#.  We reproduce that
memory-access vocabulary:

* :class:`VolatileCell` — a shared variable whose reads and writes are
  scheduling points (like a volatile field, every access is a
  synchronization event CHESS would instrument).
* :class:`PlainCell` — a shared variable whose accesses are *recorded* for
  the race detector but are not scheduling points (like an ordinary field;
  CHESS likewise does not preempt at data accesses).
* :class:`AtomicCell` — volatile cell with ``Interlocked``-style
  compare-and-swap, exchange, and add.
* :class:`SharedList` / :class:`SharedDict` — instrumented containers used
  as backing stores; their accesses are recorded like plain fields.

Every access appends an :class:`AccessRecord` to the current execution so
the analysis tools (happens-before race detection, conflict
serializability) can observe exactly what the model checker explored.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

from repro.runtime.coopc import coop_direct
from repro.runtime.scheduler import Scheduler

__all__ = [
    "AccessRecord",
    "AtomicCell",
    "PlainCell",
    "SharedDict",
    "SharedList",
    "VolatileCell",
]

#: Process-global instance ids, never reused.  ``location`` restarts per
#: execution so replayed factories number their cells identically (the
#: reduction layer matches footprints across executions); analyses that
#: accumulate over *distinct* instances key on ``uid`` instead.
_instance_uids = itertools.count(1)


class AccessRecord:
    """One instrumented access to shared state (for the analysis tools).

    Hand-rolled rather than a frozen dataclass: every instrumented
    memory access creates one, so construction cost is a per-access tax
    on both engines.  Treat instances as immutable.
    """

    __slots__ = (
        "stamp", "thread", "kind", "location", "name", "volatile", "uid"
    )

    def __init__(
        self,
        stamp: int,  # value of the execution step counter at access time
        thread: int,  # logical thread id performing the access
        kind: str,  # read / write / cas-ok / cas-fail / acquire / release
        location: int,  # per-execution-stable id of the cell or lock
        name: str,  # human-readable location name
        volatile: bool,  # whether the access has synchronization semantics
        uid: int = 0,  # process-unique id of the cell/lock instance
    ) -> None:
        self.stamp = stamp
        self.thread = thread
        self.kind = kind
        self.location = location
        self.name = name
        self.volatile = volatile
        self.uid = uid

    @property
    def is_write(self) -> bool:
        return self.kind in ("write", "cas-ok")

    @property
    def is_read(self) -> bool:
        return self.kind in ("read", "cas-fail")

    def __repr__(self) -> str:
        return (
            f"AccessRecord(stamp={self.stamp!r}, thread={self.thread!r}, "
            f"kind={self.kind!r}, location={self.location!r}, "
            f"name={self.name!r}, volatile={self.volatile!r}, "
            f"uid={self.uid!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not AccessRecord:
            return NotImplemented
        return (
            self.stamp == other.stamp
            and self.thread == other.thread
            and self.kind == other.kind
            and self.location == other.location
            and self.name == other.name
            and self.volatile == other.volatile
            and self.uid == other.uid
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.stamp,
                self.thread,
                self.kind,
                self.location,
                self.name,
                self.volatile,
                self.uid,
            )
        )


class _Location:
    """Shared base: a named location with an id, bound to a scheduler."""

    def __init__(self, scheduler: Scheduler, name: str) -> None:
        self._scheduler = scheduler
        # Scheduler-issued, stable across executions of the same factory
        # (the id sequence restarts after every execution).
        self.location = scheduler.new_location_id()
        self.uid = next(_instance_uids)
        self.name = name

    @coop_direct  # pure bookkeeping: no scheduling point anywhere below
    def _record(self, kind: str, volatile: bool) -> None:
        sched = self._scheduler
        outcome = sched._outcome  # noqa: SLF001 - runtime-internal fast path
        if outcome is None:
            return
        outcome.record_access(
            AccessRecord(
                stamp=outcome.steps,
                thread=sched.current_thread(),
                kind=kind,
                location=self.location,
                name=self.name,
                volatile=volatile,
                uid=self.uid,
            )
        )


class PlainCell(_Location):
    """A non-volatile shared variable: monitored, but not a switch point."""

    def __init__(self, scheduler: Scheduler, value: Any = None, name: str = "cell"):
        super().__init__(scheduler, name)
        self._value = value

    def get(self) -> Any:
        self._record("read", False)
        return self._value

    def set(self, value: Any) -> None:
        self._record("write", False)
        self._value = value


class VolatileCell(_Location):
    """A volatile shared variable: every access is a scheduling point."""

    def __init__(self, scheduler: Scheduler, value: Any = None, name: str = "volatile"):
        super().__init__(scheduler, name)
        self._value = value

    def get(self) -> Any:
        self._scheduler.schedule_point()
        self._record("read", True)
        return self._value

    def set(self, value: Any) -> None:
        self._scheduler.schedule_point()
        self._record("write", True)
        self._value = value

    def peek(self) -> Any:
        """Read without a scheduling point (for predicates in block_until)."""
        return self._value


class AtomicCell(VolatileCell):
    """Volatile cell with Interlocked-style atomic read-modify-write ops."""

    def compare_and_swap(self, expected: Any, update: Any) -> bool:
        """Atomically set to *update* iff the current value == *expected*.

        Returns True on success.  The whole operation is one scheduling
        point; no other thread can run between the comparison and the
        write, exactly like ``Interlocked.CompareExchange``.
        """
        self._scheduler.schedule_point()
        if self._value == expected:
            self._record("cas-ok", volatile=True)
            self._value = update
            return True
        self._record("cas-fail", volatile=True)
        return False

    def exchange(self, update: Any) -> Any:
        """Atomically set to *update*, returning the previous value."""
        self._scheduler.schedule_point()
        self._record("cas-ok", volatile=True)
        previous = self._value
        self._value = update
        return previous

    def add(self, delta: int) -> int:
        """Atomically add *delta*, returning the **new** value."""
        self._scheduler.schedule_point()
        self._record("cas-ok", volatile=True)
        self._value += delta
        return self._value

    def increment(self) -> int:
        return self.add(1)

    def decrement(self) -> int:
        return self.add(-1)


class SharedList(_Location):
    """An instrumented list used as a backing store.

    Accesses are recorded (for race analysis) but are not scheduling
    points; callers synchronize access with locks or atomics, as the .NET
    collections do for their internal arrays.
    """

    def __init__(self, scheduler: Scheduler, items: Iterable[Any] = (), name: str = "list"):
        super().__init__(scheduler, name)
        self._items: list[Any] = list(items)

    def __len__(self) -> int:
        self._record("read", False)
        return len(self._items)

    def append(self, item: Any) -> None:
        self._record("write", False)
        self._items.append(item)

    def pop(self, index: int = -1) -> Any:
        self._record("write", False)
        return self._items.pop(index)

    def insert(self, index: int, item: Any) -> None:
        self._record("write", False)
        self._items.insert(index, item)

    def get(self, index: int) -> Any:
        self._record("read", False)
        return self._items[index]

    def set(self, index: int, item: Any) -> None:
        self._record("write", False)
        self._items[index] = item

    def remove(self, item: Any) -> None:
        self._record("write", False)
        self._items.remove(item)

    def clear(self) -> None:
        self._record("write", False)
        self._items.clear()

    def snapshot(self) -> list[Any]:
        self._record("read", False)
        return list(self._items)

    def peek_len(self) -> int:
        """Length without an access record (for block_until predicates)."""
        return len(self._items)


class SharedDict(_Location):
    """An instrumented dict used as a backing store (see SharedList)."""

    def __init__(self, scheduler: Scheduler, name: str = "dict"):
        super().__init__(scheduler, name)
        self._items: dict[Any, Any] = {}

    def __len__(self) -> int:
        self._record("read", False)
        return len(self._items)

    def __contains__(self, key: Any) -> bool:
        self._record("read", False)
        return key in self._items

    def get(self, key: Any, default: Any = None) -> Any:
        self._record("read", False)
        return self._items.get(key, default)

    def set(self, key: Any, value: Any) -> None:
        self._record("write", False)
        self._items[key] = value

    def delete(self, key: Any) -> None:
        self._record("write", False)
        del self._items[key]

    def keys(self) -> list[Any]:
        self._record("read", False)
        return sorted(self._items)

    def snapshot(self) -> dict[Any, Any]:
        self._record("read", False)
        return dict(self._items)
