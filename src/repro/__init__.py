"""Line-Up: a complete and automatic linearizability checker.

A Python reproduction of Burckhardt, Dern, Musuvathi & Tan (PLDI 2010).
Line-Up decides whether a concurrent component is *deterministically
linearizable* — linearizable with respect to some deterministic
sequential specification — fully automatically: phase 1 synthesizes the
specification by enumerating the component's serial behaviours, phase 2
model-checks the concurrent behaviours against it.  Any reported
violation is a proof of non-linearizability (no false alarms).

Quick start::

    from repro import check, CheckConfig, FiniteTest, Invocation, SystemUnderTest
    from repro.structures import ConcurrentQueue

    test = FiniteTest.of([
        [Invocation("Enqueue", (200,)), Invocation("Enqueue", (400,))],
        [Invocation("TryDequeue"), Invocation("TryDequeue")],
    ])
    subject = SystemUnderTest(lambda rt: ConcurrentQueue(rt, "pre"), "queue")
    result = check(subject, test)
    print(result.verdict)          # FAIL — the Figure 1 bug

Packages:

* :mod:`repro.core` — histories, specifications, the two-phase checker,
  Auto/RandomCheck, observation files and reports.
* :mod:`repro.runtime` — the stateless model-checking scheduler and the
  instrumented primitives (the CHESS substitute).
* :mod:`repro.structures` — the 13 .NET concurrency classes of Table 1
  in buggy ("pre") and fixed ("beta") vintages.
* :mod:`repro.analysis` — the comparison checkers of Section 5.6
  (happens-before races, conflict serializability).
"""

from repro.core import (
    DOTNET_POLICIES,
    CampaignResult,
    CheckConfig,
    CheckResult,
    FiniteTest,
    Invocation,
    ObservationSet,
    Response,
    SystemUnderTest,
    TestHarness,
    InterferencePolicy,
    InterferenceRule,
    Violation,
    auto_check,
    check,
    check_against_observations,
    check_relaxed,
    check_with_harness,
    minimize_failing_test,
    random_check,
    render_check_result,
    render_violation,
)
from repro.runtime import (
    DFSStrategy,
    IterativeDFSStrategy,
    RandomStrategy,
    ReplayStrategy,
    Runtime,
    Scheduler,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignResult",
    "CheckConfig",
    "CheckResult",
    "DFSStrategy",
    "DOTNET_POLICIES",
    "InterferencePolicy",
    "InterferenceRule",
    "IterativeDFSStrategy",
    "FiniteTest",
    "Invocation",
    "ObservationSet",
    "RandomStrategy",
    "ReplayStrategy",
    "Response",
    "Runtime",
    "Scheduler",
    "SystemUnderTest",
    "TestHarness",
    "Violation",
    "__version__",
    "auto_check",
    "check",
    "check_against_observations",
    "check_relaxed",
    "check_with_harness",
    "minimize_failing_test",
    "random_check",
    "render_check_result",
    "render_violation",
]
