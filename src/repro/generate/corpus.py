"""The generation corpus: coverage-earning tests and their energy.

A test is admitted exactly when executing it reached at least one
Mazurkiewicz equivalence class not yet in the campaign's global
:class:`~repro.reduction.fingerprint.FingerprintSet` — coverage in the
fuzzing sense, with the PR-5 execution fingerprints as the signal.  Each
entry remembers how productive it has been (classes it discovered on
admission, classes its mutants discovered since) and when it last earned
any, and :meth:`Corpus.select` draws mutation parents with probability
proportional to that *energy*: recently-productive entries are favoured,
stale ones decay but never reach zero, so the scheduler keeps a tail of
exploration on old entries.

Time is measured in candidate indexes, not wall-clock — the energy of a
corpus, like everything else in this subsystem, must be a deterministic
function of the campaign history so resumed runs replay identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.checkpoint import CheckpointError, test_from_dict, test_to_dict
from repro.core.testcase import FiniteTest

__all__ = ["Corpus", "CorpusEntry"]

#: Energy decay per candidate since an entry last found a new class.
_DECAY = 0.05
#: Weight of classes found by an entry's mutants relative to its own.
_CHILD_WEIGHT = 0.5


@dataclass
class CorpusEntry:
    """One admitted test and its productivity record."""

    test: FiniteTest
    new_classes: int = 0  #: classes this test's own execution discovered
    added_at: int = 0  #: candidate index at admission
    last_new: int = 0  #: candidate index of the latest discovery it caused
    children_new: int = 0  #: classes discovered by mutants of this entry

    def energy(self, now: int) -> float:
        """Scheduling weight at candidate index *now* (always > 0)."""
        score = 1.0 + self.new_classes + _CHILD_WEIGHT * self.children_new
        age = max(0, now - self.last_new)
        return score / (1.0 + _DECAY * age)

    def to_dict(self) -> dict:
        return {
            "test": test_to_dict(self.test),
            "new_classes": self.new_classes,
            "added_at": self.added_at,
            "last_new": self.last_new,
            "children_new": self.children_new,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        return cls(
            test=test_from_dict(data["test"]),
            new_classes=int(data.get("new_classes", 0)),
            added_at=int(data.get("added_at", 0)),
            last_new=int(data.get("last_new", 0)),
            children_new=int(data.get("children_new", 0)),
        )


class Corpus:
    """An ordered list of corpus entries with energy-weighted selection."""

    def __init__(self, entries: Sequence[CorpusEntry] = ()) -> None:
        self.entries: list[CorpusEntry] = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self.entries)

    def tests(self) -> list[FiniteTest]:
        return [entry.test for entry in self.entries]

    def add(self, test: FiniteTest, new_classes: int, now: int) -> int:
        """Admit *test* (which discovered *new_classes*); return its position."""
        self.entries.append(
            CorpusEntry(
                test=test,
                new_classes=new_classes,
                added_at=now,
                last_new=now,
            )
        )
        return len(self.entries) - 1

    def credit(self, position: int, new_classes: int, now: int) -> None:
        """Credit entry *position* for a mutant that found *new_classes*."""
        entry = self.entries[position]
        entry.children_new += new_classes
        entry.last_new = now

    def select(self, rng: random.Random, now: int) -> int:
        """Energy-weighted draw of a mutation parent's position.

        Iterates entries in admission order (a list, never a raw set —
        set order is process-dependent for strings) so the draw is a
        deterministic function of *rng* and the corpus history.
        """
        if not self.entries:
            raise ValueError("cannot select from an empty corpus")
        weights = [entry.energy(now) for entry in self.entries]
        target = rng.random() * sum(weights)
        running = 0.0
        for position, weight in enumerate(weights):
            running += weight
            if target < running:
                return position
        return len(self.entries) - 1

    def to_state(self) -> list[dict]:
        """JSON form for the ``kind="generate"`` checkpoint."""
        return [entry.to_dict() for entry in self.entries]

    @classmethod
    def from_state(cls, data: object) -> "Corpus":
        """Restore :meth:`to_state`; corrupt input raises CheckpointError."""
        if data is None:
            return cls()
        try:
            if isinstance(data, (str, bytes, dict)):
                raise TypeError(
                    f"corpus state must be a list, not {type(data).__name__}"
                )
            return cls([CorpusEntry.from_dict(entry) for entry in data])
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(f"malformed generate corpus: {exc}") from exc
