"""The generation loop: coverage-guided scenario search for one class.

``RandomCheck`` (Fig. 8) samples test matrices uniformly at the paper's
3×3 default, so every sample — productive or not — pays the full
``multinomial(9; 3,3,3) = 1680``-interleaving phase-1 bill before a
single concurrent schedule runs.  :func:`run_generation_campaign`
replaces the uniform draw with a fuzzing loop:

1. start from tiny seed tests (one invocation per thread);
2. pick a mutation parent from the corpus, energy-weighted towards
   entries that recently reached new execution equivalence classes;
3. run the candidate through the ordinary two-phase check, harvesting
   its execution fingerprints;
4. admit the candidate to the corpus iff it reached a fingerprint class
   the campaign had not seen (``FingerprintSet.update`` > 0), crediting
   its parent;
5. bucket any violation by root-cause fingerprint so one bug is
   reported once, not once per schedule that exposes it.

The candidate stream is a deterministic function of ``(seed, corpus
history)``: per-candidate PRNGs come from sha256, corpus energy is
measured in candidate indexes (never wall-clock), and the de-dup "seen"
set is persisted, so a resumed campaign replays the exact stream the
interrupted one would have produced and never re-runs a completed
candidate.  Checkpoints are ``kind="generate"`` documents written
through :mod:`repro.core.checkpoint`.

Isolation: with a :class:`~repro.exec.WorkerPool` the loop plans a batch
of candidates, dispatches them as ``kind="generate"`` tasks, and folds
the outcomes back in candidate order (so concurrency never perturbs the
corpus evolution).  Within a batch the coverage feedback is necessarily
stale — the price of parallelism — and the execution budget is checked
between batches, so an isolated campaign can overshoot its budget by at
most one batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.budget import (
    BudgetMeter,
    ExplorationBudget,
    ExplorationControl,
)
from repro.core.checker import CheckConfig, check_with_harness
from repro.core.checkpoint import (
    CheckpointError,
    Checkpointer,
    config_to_dict,
    test_from_dict,
    test_to_dict,
)
from repro.core.harness import SystemUnderTest, TestHarness
from repro.core.testcase import FiniteTest
from repro.core.verdict import worst_verdict
from repro.generate.corpus import Corpus
from repro.generate.dedup import failure_record
from repro.generate.mutate import MutationEngine, candidate_rng
from repro.reduction import FingerprintSet
from repro.structures.registry import ClassUnderTest

__all__ = [
    "GenerateConfig",
    "GenerateResume",
    "GenerationReport",
    "build_generate_state",
    "parse_generate_state",
    "run_generation_campaign",
]


@dataclass(frozen=True)
class GenerateConfig:
    """Knobs of one generation campaign (the ``lineup generate`` flags)."""

    budget: int | None = 2000  #: max SUT executions across all candidates
    seeds: int = 4  #: size of the seed corpus
    seed: int = 0  #: campaign PRNG seed
    max_rows: int = 3  #: matrix growth bound (rows per column)
    max_cols: int = 3  #: matrix growth bound (columns / threads)
    deadline: float | None = None  #: wall-clock cap, seconds
    batch: int | None = None  #: isolated batch size (None = 2× workers)
    #: consecutive planning dead-ends (duplicate or impossible mutants)
    #: after which the campaign declares the space converged and stops.
    dry_limit: int = 100

    def to_dict(self) -> dict:
        return {
            "budget": self.budget,
            "seeds": self.seeds,
            "seed": self.seed,
            "max_rows": self.max_rows,
            "max_cols": self.max_cols,
            "deadline": self.deadline,
            "batch": self.batch,
            "dry_limit": self.dry_limit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerateConfig":
        return cls(
            budget=data.get("budget"),
            seeds=int(data.get("seeds", 4)),
            seed=int(data.get("seed", 0)),
            max_rows=int(data.get("max_rows", 3)),
            max_cols=int(data.get("max_cols", 3)),
            deadline=data.get("deadline"),
            batch=data.get("batch"),
            dry_limit=int(data.get("dry_limit", 100)),
        )


@dataclass
class GenerationReport:
    """What a generation campaign found, JSON-able for ``--json`` output."""

    class_name: str
    version: str
    candidates: int = 0  #: candidates actually executed
    skipped: int = 0  #: planning dead-ends (duplicate/impossible mutants)
    executions: int = 0  #: SUT executions spent (phase 1 + phase 2)
    corpus_size: int = 0
    classes: int = 0  #: distinct equivalence classes discovered
    #: class-discovery curve: (cumulative executions, classes) at every
    #: point a candidate contributed at least one new class.
    curve: list[tuple[int, int]] = field(default_factory=list)
    #: deduplicated failures, keyed by root-cause fingerprint.
    failures: dict[str, dict] = field(default_factory=dict)
    #: FAILing candidates whose root cause was already known.
    duplicate_failures: int = 0
    #: cumulative executions when the first failure surfaced, or None.
    first_failure_executions: int | None = None
    #: why the campaign stopped early; None also covers a consumed
    #: execution budget ("the budget is the plan", not an interruption).
    stop_reason: str | None = None
    converged: bool = False  #: stopped because mutation ran dry
    verdict: str = "PASS"

    def to_dict(self) -> dict:
        return {
            "class": self.class_name,
            "version": self.version,
            "candidates": self.candidates,
            "skipped": self.skipped,
            "executions": self.executions,
            "corpus_size": self.corpus_size,
            "classes": self.classes,
            "curve": [list(point) for point in self.curve],
            "failures": [
                self.failures[key] for key in sorted(self.failures)
            ],
            "unique_failures": len(self.failures),
            "duplicate_failures": self.duplicate_failures,
            "first_failure_executions": self.first_failure_executions,
            "stop_reason": self.stop_reason,
            "converged": self.converged,
            "verdict": self.verdict,
        }


@dataclass
class GenerateResume:
    """Parsed ``kind="generate"`` checkpoint state."""

    corpus: Corpus
    fingerprints: FingerprintSet
    seen: list[FiniteTest]
    failures: dict[str, dict]
    next_candidate: int = 0
    candidates: int = 0
    skipped: int = 0
    executions: int = 0
    duplicate_failures: int = 0
    first_failure_executions: int | None = None
    curve: list[tuple[int, int]] = field(default_factory=list)
    verdicts: list[str] = field(default_factory=list)
    meter_snapshot: dict | None = None


def build_generate_state(
    *,
    config: CheckConfig,
    generate: GenerateConfig,
    corpus: Corpus,
    fingerprints: FingerprintSet,
    seen: Sequence[FiniteTest],
    failures: dict[str, dict],
    next_candidate: int,
    candidates: int,
    skipped: int,
    executions: int,
    duplicate_failures: int,
    first_failure_executions: int | None,
    curve: Sequence[tuple[int, int]],
    verdicts: Sequence[str],
    meter: BudgetMeter | None,
) -> dict:
    """Assemble the JSON state for a generation checkpoint."""
    return {
        "kind": "generate",
        "config": config_to_dict(config),
        "generate": generate.to_dict(),
        "corpus": corpus.to_state(),
        "fingerprints": fingerprints.snapshot(),
        "seen": [test_to_dict(test) for test in seen],
        "failures": failures,
        "next_candidate": next_candidate,
        "candidates": candidates,
        "skipped": skipped,
        "executions": executions,
        "duplicate_failures": duplicate_failures,
        "first_failure_executions": first_failure_executions,
        "curve": [list(point) for point in curve],
        "verdicts": list(verdicts),
        "meter": meter.snapshot() if meter is not None else None,
    }


def parse_generate_state(
    document: dict,
) -> tuple[CheckConfig, GenerateConfig, GenerateResume]:
    """Turn a loaded ``kind="generate"`` checkpoint into resumable pieces."""
    from repro.core.checkpoint import config_from_dict

    try:
        config = config_from_dict(document.get("config", {}))
        generate = GenerateConfig.from_dict(document.get("generate", {}))
        resume = GenerateResume(
            corpus=Corpus.from_state(document.get("corpus")),
            fingerprints=FingerprintSet.from_snapshot(
                document.get("fingerprints")
            ),
            seen=[test_from_dict(d) for d in document.get("seen", [])],
            failures=dict(document.get("failures", {})),
            next_candidate=int(document.get("next_candidate", 0)),
            candidates=int(document.get("candidates", 0)),
            skipped=int(document.get("skipped", 0)),
            executions=int(document.get("executions", 0)),
            duplicate_failures=int(document.get("duplicate_failures", 0)),
            first_failure_executions=document.get("first_failure_executions"),
            curve=[tuple(point) for point in document.get("curve", [])],
            verdicts=list(document.get("verdicts", [])),
            meter_snapshot=document.get("meter"),
        )
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"malformed generate checkpoint: {exc}") from exc
    return config, generate, resume


class _Campaign:
    """Mutable state of one generation campaign (shared by both modes)."""

    def __init__(
        self,
        entry: ClassUnderTest,
        version: str,
        config: CheckConfig,
        generate: GenerateConfig,
        resume: GenerateResume | None,
    ) -> None:
        self.entry = entry
        self.version = version
        self.config = config
        self.generate = generate
        self.subject_label = f"{entry.name}({version})"
        self.engine = MutationEngine(
            entry.invocations,
            max_rows=generate.max_rows,
            max_cols=generate.max_cols,
            init=entry.init,
        )
        if generate.seeds < 1:
            raise ValueError("a generation campaign needs at least one seed")
        self.seeds = self.engine.seed_tests(generate.seeds, generate.seed)
        if resume is None:
            self.corpus = Corpus()
            self.fingerprints = FingerprintSet()
            self.seen_list: list[FiniteTest] = []
            self.failures: dict[str, dict] = {}
            self.index = 0
            self.candidates = 0
            self.skipped = 0
            self.executions = 0
            self.duplicate_failures = 0
            self.first_failure_executions: int | None = None
            self.curve: list[tuple[int, int]] = []
            self.verdicts: list[str] = []
        else:
            self.corpus = resume.corpus
            self.fingerprints = resume.fingerprints
            self.seen_list = list(resume.seen)
            self.failures = dict(resume.failures)
            self.index = resume.next_candidate
            self.candidates = resume.candidates
            self.skipped = resume.skipped
            self.executions = resume.executions
            self.duplicate_failures = resume.duplicate_failures
            self.first_failure_executions = resume.first_failure_executions
            self.curve = list(resume.curve)
            self.verdicts = list(resume.verdicts)
        self.seen: set[FiniteTest] = set(self.seen_list)
        self.dry = 0

    # -- candidate planning (pure: corpus/seen state + index → test) --

    def plan_one(self) -> "tuple[FiniteTest, int | None, str] | None":
        """Plan the next candidate; None on a dead end.  Advances index."""
        index = self.index
        self.index += 1
        if index < len(self.seeds):
            test = self.seeds[index]
            if test in self.seen:
                return None
            return test, None, "seed"
        rng = candidate_rng(self.generate.seed, index)
        if len(self.corpus):
            parent = self.corpus.select(rng, now=index)
            parent_test = self.corpus.entries[parent].test
        else:  # nothing admitted yet: mutate a seed instead
            parent = None
            parent_test = self.seeds[rng.randrange(len(self.seeds))]
        mutated = self.engine.mutate(parent_test, rng, self.corpus.tests())
        if mutated is None:
            return None
        test, _op = mutated
        if test in self.seen:
            return None
        return test, parent, _op

    def note_planned(self, test: FiniteTest) -> None:
        self.seen.add(test)
        self.seen_list.append(test)

    # -- outcome folding (identical for in-process and isolated runs) --

    def fold(
        self,
        candidate: int,
        test: FiniteTest,
        parent: int | None,
        verdict: str,
        candidate_executions: int,
        digests: Sequence[str],
        failure: dict | None,
    ) -> None:
        self.candidates += 1
        self.executions += candidate_executions
        self.verdicts.append(verdict)
        new = self.fingerprints.update(digests)
        if new:
            self.corpus.add(test, new, candidate)
            if parent is not None:
                self.corpus.credit(parent, new, candidate)
            self.curve.append((self.executions, len(self.fingerprints)))
        if failure is not None:
            key = failure["fingerprint"]
            if key in self.failures:
                self.failures[key]["count"] += 1
                self.duplicate_failures += 1
            else:
                record = dict(failure)
                record["count"] = 1
                record["candidate"] = candidate
                record["executions"] = self.executions
                self.failures[key] = record
                if self.first_failure_executions is None:
                    self.first_failure_executions = self.executions

    def state(self, meter: BudgetMeter | None) -> dict:
        return build_generate_state(
            config=self.config,
            generate=self.generate,
            corpus=self.corpus,
            fingerprints=self.fingerprints,
            seen=self.seen_list,
            failures=self.failures,
            next_candidate=self.index,
            candidates=self.candidates,
            skipped=self.skipped,
            executions=self.executions,
            duplicate_failures=self.duplicate_failures,
            first_failure_executions=self.first_failure_executions,
            curve=self.curve,
            verdicts=self.verdicts,
            meter=meter,
        )

    def report(self, stop_reason: str | None, converged: bool) -> GenerationReport:
        # A consumed execution budget is the normal end of a campaign,
        # not an early stop — the budget *is* the plan.
        reported_stop = None if stop_reason == "executions" else stop_reason
        inputs = list(self.verdicts)
        if self.failures:
            inputs.append("FAIL")
        if reported_stop is not None:
            inputs.append("EXHAUSTED")
        verdict = worst_verdict(inputs)
        if verdict == "EXHAUSTED" and reported_stop is None:
            # Per-candidate EXHAUSTED verdicts fold into the budget story.
            verdict = "PASS" if not self.failures else "FAIL"
        return GenerationReport(
            class_name=self.entry.name,
            version=self.version,
            candidates=self.candidates,
            skipped=self.skipped,
            executions=self.executions,
            corpus_size=len(self.corpus),
            classes=len(self.fingerprints),
            curve=list(self.curve),
            failures=dict(self.failures),
            duplicate_failures=self.duplicate_failures,
            first_failure_executions=self.first_failure_executions,
            stop_reason=reported_stop,
            converged=converged,
            verdict=verdict,
        )


def run_generation_campaign(
    entry: ClassUnderTest,
    version: str,
    config: CheckConfig | None = None,
    generate: GenerateConfig | None = None,
    *,
    scheduler=None,
    control: ExplorationControl | None = None,
    checkpointer: Checkpointer | None = None,
    resume: GenerateResume | None = None,
    pool=None,
    provider: str | None = None,
    on_candidate: Callable[[int, str], None] | None = None,
) -> GenerationReport:
    """Run one coverage-guided generation campaign for *entry*/*version*.

    In-process by default; pass a :class:`~repro.exec.WorkerPool` as
    *pool* (plus the *provider* module name) to run candidates in
    sandboxed workers.  *resume* restores a parsed generate checkpoint;
    *checkpointer* persists progress after every folded candidate.
    *on_candidate* is a progress hook called with (candidate index,
    verdict) after each fold.
    """
    cfg = config or CheckConfig()
    gen = generate or GenerateConfig()
    campaign = _Campaign(entry, version, cfg, gen, resume)

    if control is None:
        budget = ExplorationBudget(
            deadline_seconds=gen.deadline, max_executions=gen.budget
        )
        meter = None
        if resume is not None and resume.meter_snapshot is not None:
            meter = BudgetMeter.from_snapshot(resume.meter_snapshot)
            meter = BudgetMeter(
                budget=budget,
                elapsed=meter.elapsed,
                executions=meter.executions,
                decisions=meter.decisions,
            )
        control = ExplorationControl(budget=budget, meter=meter)
    control.start()

    if pool is not None:
        stop_reason, converged = _run_isolated(
            campaign, control, checkpointer, pool, provider, on_candidate
        )
    else:
        stop_reason, converged = _run_inprocess(
            campaign, control, checkpointer, scheduler, on_candidate
        )

    if checkpointer is not None:
        checkpointer.save(campaign.state(control.meter))
    return campaign.report(stop_reason, converged)


def _run_inprocess(
    campaign: _Campaign,
    control: ExplorationControl,
    checkpointer: Checkpointer | None,
    scheduler,
    on_candidate,
) -> tuple[str | None, bool]:
    cfg = campaign.config
    subject = SystemUnderTest(
        campaign.entry.factory(campaign.version), campaign.subject_label
    )
    stop_reason: str | None = None
    converged = False
    with TestHarness(
        subject,
        scheduler=scheduler,
        max_steps=cfg.max_steps,
        watchdog=cfg.watchdog_seconds,
        engine=cfg.engine,
    ) as harness:
        while True:
            reason = control.halt_reason()
            if reason is not None:
                stop_reason = reason
                break
            planned = campaign.plan_one()
            if planned is None:
                campaign.skipped += 1
                campaign.dry += 1
                if campaign.dry >= campaign.generate.dry_limit:
                    converged = True
                    break
                continue
            campaign.dry = 0
            test, parent, _op = planned
            campaign.note_planned(test)
            candidate = campaign.index - 1
            candidate_fp = FingerprintSet()
            result = check_with_harness(
                harness, test, cfg, control=control, fingerprints=candidate_fp
            )
            if result.exhausted and result.exhausted_reason is not None:
                # The budget tripped mid-candidate: its fingerprints are
                # partial, so folding them would make the corpus diverge
                # from an uninterrupted run.  Roll the plan back instead;
                # the resume re-runs this candidate from scratch (the
                # campaign contract — execution-level resume granularity
                # is reserved for single checks).
                campaign.index = candidate
                campaign.seen.discard(test)
                campaign.seen_list.pop()
                stop_reason = result.exhausted_reason
                break
            failure = None
            if result.violation is not None:
                failure = failure_record(
                    result.violation, campaign.subject_label, test
                )
            campaign.fold(
                candidate,
                test,
                parent,
                result.verdict,
                result.phase1.executions + result.phase2_executions,
                candidate_fp.snapshot(),
                failure,
            )
            if on_candidate is not None:
                on_candidate(candidate, result.verdict)
            if checkpointer is not None:
                checkpointer.tick(lambda: campaign.state(control.meter))
    return stop_reason, converged


def _run_isolated(
    campaign: _Campaign,
    control: ExplorationControl,
    checkpointer: Checkpointer | None,
    pool,
    provider: str | None,
    on_candidate,
) -> tuple[str | None, bool]:
    from repro.exec.supervisor import TaskSpec

    cfg = campaign.config
    gen = campaign.generate
    batch_size = gen.batch or max(2 * pool.config.workers, 4)
    config_dict = config_to_dict(cfg)
    stop_reason: str | None = None
    converged = False
    while True:
        reason = control.halt_reason()
        if reason is not None:
            stop_reason = reason
            break
        # Plan a batch from the current corpus state.  Feedback within
        # the batch is deferred to fold time, which keeps the stream
        # deterministic regardless of worker completion order.
        batch: list[tuple[int, FiniteTest, int | None]] = []
        while len(batch) < batch_size:
            planned = campaign.plan_one()
            if planned is None:
                campaign.skipped += 1
                campaign.dry += 1
                if campaign.dry >= gen.dry_limit:
                    converged = True
                    break
                continue
            campaign.dry = 0
            test, parent, _op = planned
            campaign.note_planned(test)
            batch.append((campaign.index - 1, test, parent))
        if not batch:
            break
        specs = [
            TaskSpec(
                index=candidate,
                class_name=campaign.entry.name,
                version=campaign.version,
                test=test_to_dict(test),
                config=config_dict,
                provider=provider,
                kind="generate",
            )
            for candidate, test, _parent in batch
        ]
        outcomes, pool_stop = pool.run(specs, control=control)
        by_index = {
            outcome.index: outcome for outcome in outcomes if outcome is not None
        }
        folded_upto = len(batch)
        for position, (candidate, test, parent) in enumerate(batch):
            outcome = by_index.get(candidate)
            if outcome is None:
                # An interrupted pool run leaves a tail of the batch
                # without outcomes; fold stops at the first gap so the
                # corpus evolution stays a prefix of the uninterrupted
                # one (completed stragglers after the gap are re-run).
                folded_upto = position
                break
            summary = outcome.summary or {}
            campaign.fold(
                candidate,
                test,
                parent,
                outcome.verdict,
                int(summary.get("executions", 0)),
                summary.get("fingerprints") or (),
                summary.get("failure"),
            )
            if control.meter is not None:
                # Workers meter their own executions; fold them into the
                # campaign budget after the fact (batch-granular).
                control.meter.executions += int(summary.get("executions", 0))
            if on_candidate is not None:
                on_candidate(candidate, outcome.verdict)
        if folded_upto < len(batch):
            # Roll back the unfolded tail so the resume re-plans it.
            for _candidate, test, _parent in reversed(batch[folded_upto:]):
                campaign.seen.discard(test)
                campaign.seen_list.pop()
            campaign.index = batch[folded_upto][0]
        if checkpointer is not None:
            checkpointer.tick(lambda: campaign.state(control.meter))
        if pool_stop is not None:
            stop_reason = pool_stop
            break
        if converged:
            break
    return stop_reason, converged
