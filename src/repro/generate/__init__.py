"""Coverage-guided scenario generation (the ``lineup generate`` subsystem).

Where :func:`repro.core.testcase.sample_tests` implements the paper's
uniform ``RandomCheck`` sampling, this package implements its
fuzzing-era successor: candidates are *grown* by seeded mutation from a
corpus of tests that previously reached new Mazurkiewicz execution
equivalence classes (the fingerprint machinery of
:mod:`repro.reduction.fingerprint` acting as the coverage map), and
failures are deduplicated by root-cause fingerprint so a bug is
reported once rather than once per schedule.

Modules:

* :mod:`repro.generate.mutate` — seeded mutation operators over test
  matrices, deterministic across processes and start methods;
* :mod:`repro.generate.corpus` — the corpus store with energy-weighted
  parent scheduling (recently-productive entries are favoured);
* :mod:`repro.generate.dedup` — root-cause failure bucketing;
* :mod:`repro.generate.campaign` — the generation loop, checkpoint
  state, and the isolated (worker-pool) dispatch path;
* :mod:`repro.generate.worker` — the ``kind="generate"`` task entry
  point run inside sandboxed workers.

See ``docs/GENERATION.md`` for the full design.
"""

from repro.generate.campaign import (
    GenerateConfig,
    GenerateResume,
    GenerationReport,
    build_generate_state,
    parse_generate_state,
    run_generation_campaign,
)
from repro.generate.corpus import Corpus, CorpusEntry
from repro.generate.dedup import failure_record, root_cause_fingerprint
from repro.generate.mutate import MUTATION_OPS, MutationEngine, candidate_rng

__all__ = [
    "Corpus",
    "CorpusEntry",
    "GenerateConfig",
    "GenerateResume",
    "GenerationReport",
    "MUTATION_OPS",
    "MutationEngine",
    "build_generate_state",
    "candidate_rng",
    "failure_record",
    "parse_generate_state",
    "root_cause_fingerprint",
    "run_generation_campaign",
]
