"""Failure deduplication by root-cause fingerprint.

A generation campaign that mutates towards a bug will hit that bug over
and over — the same race reached through dozens of matrices and hundreds
of schedules.  Reporting each occurrence separately would bury the
signal, so failures are bucketed by a *root-cause fingerprint*: a digest
of what went wrong (the violation kind), on what subject, involving
which multiset of methods, and — for blocking violations — which
operation got stuck.  One bug is reported once, with an occurrence
count, no matter how many candidates rediscovered it.

The fingerprint is deliberately coarse.  It ignores argument values,
operation multiplicities, matrix shape, and the schedule, because those
all vary freely across rediscoveries of one underlying race (a bug
found in a 2×2 matrix is found again in every 3×3 matrix extending it);
it keeps the *set* of involved methods because genuinely different bugs
in one class almost always involve different operations (compare the
per-version causes in Table 2).  Two distinct bugs with identical kind
and method set would collapse into one bucket — an accepted trade-off,
mirroring how fuzzers bucket crashes by stack hash rather than by
proven root cause.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

__all__ = ["failure_record", "root_cause_fingerprint"]


def _method_set(operations: Iterable) -> str:
    methods = set()
    for op in operations:
        invocation = getattr(op, "invocation", op)
        methods.add(getattr(invocation, "method", None) or str(invocation))
    return ",".join(sorted(methods))


def root_cause_fingerprint(violation, subject: str) -> str:
    """Bucket digest for one :class:`~repro.core.checker.Violation`."""
    parts = [subject, violation.kind]
    if violation.nondeterminism is not None:
        witness = violation.nondeterminism
        invocation = getattr(witness, "invocation", None)
        parts.append(getattr(invocation, "method", None) or str(invocation))
    if violation.history is not None:
        parts.append(_method_set(violation.history.operations))
    if violation.pending_op is not None:
        pending = getattr(violation.pending_op, "invocation", violation.pending_op)
        parts.append("pending:" + (getattr(pending, "method", None) or str(pending)))
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8", "backslashreplace"))
        hasher.update(b"\x00")
    return hasher.hexdigest()[:16]


def failure_record(violation, subject: str, test) -> dict:
    """The JSON-able failure payload a worker (or in-process check) emits."""
    from repro.core.checkpoint import test_to_dict

    return {
        "fingerprint": root_cause_fingerprint(violation, subject),
        "kind": violation.kind,
        "description": violation.describe(),
        "test": test_to_dict(test),
        "matrix": str(test),
    }
