"""Mutation engine over finite-test matrices.

Uniform sampling (``RandomCheck``, Fig. 8) draws every test from the full
``M^I_{3×3}`` space, and every 3×3 test pays the same enormous phase-1
bill — ``multinomial(9; 3,3,3)`` serial interleavings — whether or not
its behaviour differs from tests already run.  The generation subsystem
instead *grows* tests: it starts from tiny seeds and applies small,
seeded mutations to corpus entries that previously reached new execution
equivalence classes, so matrix size (and with it phase-1 cost) is only
spent where the coverage signal says the behaviour space is still
expanding.

Everything here is deterministic by construction.  Each candidate index
gets its own :class:`random.Random` derived from ``sha256(seed, index)``
— never from :func:`hash`, whose value differs between processes under
``PYTHONHASHSEED`` randomization — so the candidate stream is a pure
function of ``(seed, corpus state)`` and replays identically across
resume and across worker start methods.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence

from repro.core.events import Invocation
from repro.core.testcase import FiniteTest, sample_tests

__all__ = ["MUTATION_OPS", "MutationEngine", "candidate_rng"]

#: The mutation operators, in the order the engine draws from them.
MUTATION_OPS = ("add", "remove", "swap", "replace", "splice")

#: Attempts per candidate before the engine gives up (tiny alphabets can
#: make every operator a no-op on a given parent).
_MAX_ATTEMPTS = 12


def candidate_rng(seed: int, index: int) -> random.Random:
    """A private PRNG for candidate *index* of a campaign seeded *seed*.

    Derived via sha256 so it is stable across processes, platforms, and
    multiprocessing start methods — the determinism anchor of the whole
    subsystem.
    """
    digest = hashlib.sha256(
        f"lineup-generate:{seed}:{index}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class MutationEngine:
    """Seeded mutations over test matrices, bounded by max dimensions.

    The operator set mirrors classic coverage-guided fuzzers, transposed
    to invocation matrices:

    * ``add`` — insert an alphabet invocation into a column (or open a
      new column, which varies the thread count);
    * ``remove`` — delete one invocation (empty columns are dropped);
    * ``swap`` — exchange two invocation positions, possibly across
      columns (thread-assignment variation);
    * ``replace`` — overwrite one position with a different alphabet
      entry (argument variation, since alphabet entries carry their
      argument tuples);
    * ``splice`` — recombine columns of the parent with columns of
      another corpus entry.
    """

    def __init__(
        self,
        alphabet: Sequence[Invocation],
        *,
        max_rows: int = 3,
        max_cols: int = 3,
        init: Sequence[Invocation] = (),
        final: Sequence[Invocation] = (),
    ) -> None:
        if not alphabet:
            raise ValueError("mutation needs a non-empty invocation alphabet")
        if max_rows < 1 or max_cols < 1:
            raise ValueError("max dimensions must be >= 1")
        self.alphabet = tuple(alphabet)
        self.max_rows = max_rows
        self.max_cols = max_cols
        self.init = tuple(init)
        self.final = tuple(final)

    def seed_tests(self, k: int, seed: int) -> list[FiniteTest]:
        """The initial corpus: *k* small tests (1×2, then 2×2 overflow).

        Seeds are deliberately minimal — one invocation per thread — so
        the campaign's early phase-1 bills are trivial and dimension is
        only grown by mutation when the coverage signal warrants it.
        """
        cols = min(2, self.max_cols)
        seeds = sample_tests(
            self.alphabet, 1, cols, k, seed=seed,
            init=self.init, final=self.final,
        )
        if len(seeds) < k and self.max_rows >= 2:
            extra = sample_tests(
                self.alphabet, 2, cols, k - len(seeds), seed=seed,
                init=self.init, final=self.final,
            )
            known = {test.columns for test in seeds}
            seeds.extend(t for t in extra if t.columns not in known)
        return seeds[:k]

    def mutate(
        self,
        parent: FiniteTest,
        rng: random.Random,
        pool: Sequence[FiniteTest] = (),
    ) -> "tuple[FiniteTest, str] | None":
        """One mutated child of *parent*, or None if every attempt failed.

        Draws operators from *rng* until one produces a test different
        from the parent; *pool* supplies splice partners.  Purely a
        function of its arguments — no global state, no wall clock.
        """
        ops = list(MUTATION_OPS) if pool else [
            op for op in MUTATION_OPS if op != "splice"
        ]
        for _ in range(_MAX_ATTEMPTS):
            op = rng.choice(ops)
            columns = [list(col) for col in parent.columns]
            mutated = getattr(self, f"_{op}")(columns, rng, pool)
            if mutated is None:
                continue
            candidate = FiniteTest.of(mutated, init=self.init, final=self.final)
            if candidate != parent:
                return candidate, op
        return None

    # -- operators (each takes mutable columns, returns columns or None) --

    def _add(self, columns, rng, pool):
        choices = []
        if len(columns) < self.max_cols:
            choices.append(None)  # open a new column
        choices.extend(
            i for i, col in enumerate(columns) if len(col) < self.max_rows
        )
        if not choices:
            return None
        where = rng.choice(choices)
        invocation = rng.choice(self.alphabet)
        if where is None:
            columns.insert(rng.randrange(len(columns) + 1), [invocation])
        else:
            columns[where].insert(
                rng.randrange(len(columns[where]) + 1), invocation
            )
        return columns

    def _remove(self, columns, rng, pool):
        positions = [
            (c, i) for c, col in enumerate(columns) for i in range(len(col))
        ]
        if len(positions) <= 1:
            return None
        col, row = rng.choice(positions)
        del columns[col][row]
        kept = [col for col in columns if col]
        return kept or None

    def _swap(self, columns, rng, pool):
        positions = [
            (c, i) for c, col in enumerate(columns) for i in range(len(col))
        ]
        if len(positions) < 2:
            return None
        (c1, r1), (c2, r2) = rng.sample(positions, 2)
        columns[c1][r1], columns[c2][r2] = columns[c2][r2], columns[c1][r1]
        return columns

    def _replace(self, columns, rng, pool):
        positions = [
            (c, i) for c, col in enumerate(columns) for i in range(len(col))
        ]
        if not positions:
            return None
        col, row = rng.choice(positions)
        columns[col][row] = rng.choice(self.alphabet)
        return columns

    def _splice(self, columns, rng, pool):
        if not pool:
            return None
        other = rng.choice(list(pool))
        width = min(self.max_cols, max(len(columns), other.n_threads))
        spliced = []
        for index in range(width):
            mine = columns[index] if index < len(columns) else None
            theirs = (
                list(other.columns[index])
                if index < other.n_threads
                else None
            )
            pick = theirs if (mine is None or rng.random() < 0.5) else mine
            if pick is None:
                pick = mine
            if pick:
                spliced.append(list(pick)[: self.max_rows])
        return spliced or None
