"""Worker-side execution of one generation candidate (``kind="generate"``).

Runs inside the :mod:`repro.exec.sandbox` worker process, so a candidate
that crashes or wedges the subject kills a worker — not the campaign —
and the supervisor's retry/quarantine machinery contains it.  Compared
to the plain ``"check"`` kind, a generate task additionally harvests the
execution fingerprints (the coverage signal the coordinator feeds its
corpus-admission decision) and renders the root-cause failure record in
the worker, so violation objects never cross the pipe.

Everything beyond the verdict travels inside the ``summary`` dict: the
supervisor's :class:`~repro.exec.supervisor.TaskOutcome` only carries
``verdict`` and ``summary`` across retries and the flaky-verdict guard.
"""

from __future__ import annotations

__all__ = ["run_generate_task"]


def run_generate_task(spec: dict) -> dict:
    """Check one candidate; reply with coverage and failure payloads."""
    from repro.core.campaign import TestSummary
    from repro.core.checker import check
    from repro.exec.sandbox import _resolve_subject
    from repro.generate.dedup import failure_record
    from repro.reduction import FingerprintSet

    subject, test, config = _resolve_subject(spec)
    fingerprints = FingerprintSet()
    result = check(subject, test, config, fingerprints=fingerprints)
    summary = TestSummary.from_result(result).to_dict()
    summary["kind"] = "generate"
    summary["executions"] = result.phase1.executions + result.phase2_executions
    summary["fingerprints"] = fingerprints.snapshot()
    summary["failure"] = (
        failure_record(result.violation, subject.name, test)
        if result.violation is not None
        else None
    )
    return {"verdict": result.verdict, "summary": summary}
