"""Synthesized sequential specifications (paper Sections 2.2–2.4, 3.3).

Line-Up never asks the user for a specification.  Phase 1 of the check
*synthesizes* one by recording every serial execution of the finite test:

* the set **A** of full serial histories (``M̂s(X, m)`` in the paper), and
* the set **B** of stuck serial histories (``M̄s(X, m)``), which capture
  where the implementation is *allowed* to block.

:class:`ObservationSet` holds both, indexed by :data:`Profile` so that the
witness search only inspects candidates with matching per-thread behaviour
(the grouping of the paper's observation-file format, Fig. 7).

It also implements the determinism gate of ``Check`` (Fig. 5, line 4):
the specification is *deterministic* iff no two recorded serial histories
share a longest common prefix that ends in a call — equivalently, in the
event-token trie of all recorded histories, every node entered through a
call token has at most one continuation (the response, or ``#``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.history import Profile, SerialHistory

__all__ = ["NondeterminismWitness", "ObservationSet"]


@dataclass(frozen=True)
class NondeterminismWitness:
    """Two serial histories proving the specification is nondeterministic.

    Their longest common prefix ends with the call of ``invocation`` by
    ``thread``; ``first`` continues with one behaviour and ``second`` with
    another (a different response, or one blocks while the other returns).
    """

    first: SerialHistory
    second: SerialHistory
    thread: int
    invocation: object
    continuation_a: object
    continuation_b: object

    def describe(self) -> str:
        return (
            f"after the same serial prefix, {self.invocation} on thread "
            f"{self.thread} behaved as {self._fmt(self.continuation_a)} in one "
            f"execution and as {self._fmt(self.continuation_b)} in another"
        )

    @staticmethod
    def _fmt(token: object) -> str:
        if token == "#":
            return "blocked (#)"
        return str(token[2]) if isinstance(token, tuple) else str(token)


class _TrieNode:
    __slots__ = ("children", "exemplar", "terminal")

    def __init__(self) -> None:
        self.children: dict = {}
        self.exemplar: SerialHistory | None = None
        self.terminal: SerialHistory | None = None


class ObservationSet:
    """The recorded serial behaviours of one finite test (sets A and B)."""

    def __init__(self, n_threads: int) -> None:
        self.n_threads = n_threads
        self.full: list[SerialHistory] = []
        self.stuck: list[SerialHistory] = []
        self._seen: set[tuple] = set()
        self._full_groups: dict[Profile, list[SerialHistory]] = {}
        self._stuck_groups: dict[Profile, list[SerialHistory]] = {}
        self._root = _TrieNode()
        self._nondeterminism: NondeterminismWitness | None = None

    # -- construction ------------------------------------------------------

    def add(self, history: SerialHistory) -> bool:
        """Record one serial history; returns False if already present."""
        tokens = history.tokens()
        if tokens in self._seen:
            return False
        self._seen.add(tokens)
        profile = history.profile_for(self.n_threads)
        if history.stuck:
            self.stuck.append(history)
            self._stuck_groups.setdefault(profile, []).append(history)
        else:
            self.full.append(history)
            self._full_groups.setdefault(profile, []).append(history)
        self._insert_trie(history, tokens)
        return True

    def extend(self, histories: Iterable[SerialHistory]) -> None:
        for history in histories:
            self.add(history)

    def _insert_trie(self, history: SerialHistory, tokens: tuple) -> None:
        node = self._root
        after_call = False
        for token in tokens:
            if after_call and self._nondeterminism is None:
                self._check_branch(node, token, history)
            child = node.children.get(token)
            if child is None:
                child = _TrieNode()
                node.children[token] = child
            if child.exemplar is None:
                child.exemplar = history
            node = child
            after_call = isinstance(token, tuple) and token[0] == "c"
        node.terminal = history

    def _check_branch(self, node: _TrieNode, token: object, history: SerialHistory) -> None:
        """*node* was entered through a call; adding *token* may branch."""
        for existing_token, child in node.children.items():
            if existing_token != token:
                call = self._call_before(node)
                self._nondeterminism = NondeterminismWitness(
                    first=child.exemplar or history,
                    second=history,
                    thread=call[1],
                    invocation=call[2],
                    continuation_a=existing_token,
                    continuation_b=token,
                )
                return

    def _call_before(self, node: _TrieNode) -> tuple:
        # Walk the trie to find the call token leading into *node*; cheaper
        # to thread it through insertion, but this runs only on failure.
        stack: list[tuple[_TrieNode, tuple | None]] = [(self._root, None)]
        while stack:
            current, incoming = stack.pop()
            if current is node and incoming is not None:
                return incoming
            for token, child in current.children.items():
                stack.append((child, token if isinstance(token, tuple) else incoming))
        return ("c", -1, None)  # pragma: no cover - node is always reachable

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.full) + len(self.stuck)

    def __iter__(self) -> Iterator[SerialHistory]:
        yield from self.full
        yield from self.stuck

    @property
    def is_deterministic(self) -> bool:
        """Whether A ∪ B could come from a deterministic specification."""
        return self._nondeterminism is None

    @property
    def nondeterminism(self) -> NondeterminismWitness | None:
        return self._nondeterminism

    def full_candidates(self, profile: Profile) -> list[SerialHistory]:
        """Full serial histories whose profile matches (witness candidates)."""
        return self._full_groups.get(profile, [])

    def stuck_candidates(self, profile: Profile) -> list[SerialHistory]:
        """Stuck serial histories whose profile matches."""
        return self._stuck_groups.get(profile, [])

    def profiles(self) -> list[Profile]:
        """All distinct profiles, full first (observation-file sections)."""
        seen: list[Profile] = []
        for profile in list(self._full_groups) + list(self._stuck_groups):
            if profile not in seen:
                seen.append(profile)
        return seen
