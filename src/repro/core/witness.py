"""Serial-witness search (paper Definitions 1–3).

A serial history S is a *serial witness* for a history H when

1. S is serial,
2. ``H|t = S|t`` for every thread t (same per-thread operations, same
   responses), and
3. ``<H ⊆ <S`` (non-overlapping operations keep their order).

Because condition 2 forces S to have exactly H's profile, the search only
inspects the observation group with that profile (the paper notes this is
what makes the observation-file grouping effective).  Within a group,
condition 3 is a pairwise position check.

``check_full_history`` implements Definition 1 for the *full* concurrent
histories of phase 2 and ``check_stuck_history`` implements Definition 2
for the stuck ones: each pending operation e needs a stuck serial witness
for ``H[e]`` — the justification that e is *allowed* to block there.

``brute_force_full_witness`` is an independent O(n!) reference used by the
property-based tests to validate the grouped search.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.core.events import Operation
from repro.core.history import History, SerialHistory, SerialStep
from repro.core.spec import ObservationSet

__all__ = [
    "StuckCheckResult",
    "brute_force_full_witness",
    "check_full_history",
    "check_stuck_history",
    "is_witness_for",
]


def is_witness_for(candidate: SerialHistory, history: History) -> bool:
    """Whether *candidate* is a serial witness for *history*.

    Assumes profiles already match (condition 2); verifies condition 3,
    ``<H ⊆ <S``, by comparing serial positions for every ordered pair.
    """
    positions = candidate.positions
    ops = history.operations
    for i, a in enumerate(ops):
        if a.return_pos is None:
            continue  # a pending op precedes nothing
        for b in ops:
            if a is b or not history.precedes(a, b):
                continue
            pa = positions.get(a.key)
            pb = positions.get(b.key)
            if pa is None or pb is None or pa >= pb:
                return False
    return True


def check_full_history(
    history: History, observations: ObservationSet
) -> SerialHistory | None:
    """Definition 1 for a full history: find a serial witness in set A.

    Returns the witness, or None when the history is not linearizable
    with respect to the synthesized specification.
    """
    profile = history.profile
    for candidate in observations.full_candidates(profile):
        if is_witness_for(candidate, history):
            return candidate
    return None


@dataclass(frozen=True)
class StuckCheckResult:
    """Outcome of Definition 2 for one stuck history.

    ``witnesses`` maps each pending operation key to its stuck serial
    witness; ``failed`` is the first pending operation that has none
    (None when the history is linearizable).
    """

    witnesses: dict[tuple[int, int], SerialHistory]
    failed: Operation | None

    @property
    def ok(self) -> bool:
        return self.failed is None


def check_stuck_history(
    history: History, observations: ObservationSet
) -> StuckCheckResult:
    """Definition 2: every pending operation of *history* needs a stuck
    serial witness for ``H[e]`` among the phase-1 stuck histories."""
    witnesses: dict[tuple[int, int], SerialHistory] = {}
    for op in history.pending_operations:
        projected = history.project_pending(op)
        witness = _find_stuck_witness(projected, observations)
        if witness is None:
            return StuckCheckResult(witnesses, failed=op)
        witnesses[op.key] = witness
    return StuckCheckResult(witnesses, failed=None)


def _find_stuck_witness(
    projected: History, observations: ObservationSet
) -> SerialHistory | None:
    profile = projected.profile
    for candidate in observations.stuck_candidates(profile):
        if is_witness_for(candidate, projected):
            return candidate
    return None


def brute_force_full_witness(
    history: History, observations: ObservationSet
) -> SerialHistory | None:
    """Reference implementation: try every permutation of the operations.

    Exponential; only for cross-validation in tests.  Considers every
    linear arrangement of the (complete) operations, keeps those that are
    serial witnesses for *history*, and returns the first that appears in
    the observation set.
    """
    recorded = {obs.tokens() for obs in observations.full}
    ops = history.operations
    for order in permutations(ops):
        # Per-thread program order must be preserved (well-formedness of S).
        per_thread: dict[int, int] = {}
        ok = True
        for op in order:
            expected = per_thread.get(op.thread, 0)
            if op.op_index != expected:
                ok = False
                break
            per_thread[op.thread] = expected + 1
        if not ok:
            continue
        candidate = SerialHistory(
            tuple(SerialStep(op.thread, op.invocation, op.response) for op in order)
        )
        if candidate.tokens() not in recorded:
            continue
        if is_witness_for(candidate, history):
            return candidate
    return None
