"""Events, invocations, responses and operations (paper Section 2.1).

The paper models an execution as a *history*: a finite sequence of call
and return events.  Following Theorem 1 of Herlihy & Wing (cited by the
paper), linearizability of multi-object histories reduces to single-object
histories, and Line-Up checks one object at a time — so events here carry
a thread and an action but no object field.

* :class:`Invocation` — an operation name plus argument values, e.g.
  ``Invocation("Add", (200,))``.  Invocation equality is what the test
  matrices, the observation files and the determinism check compare.
* :class:`Response` — the observed outcome of an operation: a returned
  value (``ok(v)`` in the paper's notation) or a raised exception, which
  we treat as just another response value so that exception behaviour is
  also required to be deterministic.
* :class:`Event` — one call or return performed by a logical thread.
* :class:`Operation` — an invocation paired with its matching response
  (or pending), plus its position information inside a history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Event", "Invocation", "Operation", "Response"]


def _fmt_value(value: Any) -> str:
    if isinstance(value, str):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class Invocation:
    """An operation name with arguments — an element of the set I_o.

    ``method`` is the attribute name invoked on the object under test;
    ``args`` are the positional arguments.  Arguments must be hashable
    (they are compared and hashed when grouping observations).

    ``target`` names the object in *multi-object* tests (None for the
    ordinary single-object case).  Following the paper's use of
    Theorem 1 [Herlihy & Wing], multi-object histories are checked by
    reducing to the per-object projections — see
    :mod:`repro.core.multi`.
    """

    method: str
    args: tuple = ()
    target: str | None = None

    def __str__(self) -> str:
        prefix = f"{self.target}." if self.target else ""
        if not self.args:
            return f"{prefix}{self.method}()"
        return (
            f"{prefix}{self.method}"
            f"({', '.join(_fmt_value(a) for a in self.args)})"
        )


#: Response kinds.
OK = "ok"
RAISED = "raised"


@dataclass(frozen=True)
class Response:
    """The observed outcome of an operation — an element of the set R_o.

    ``kind`` is :data:`OK` for a normal return (``value`` is the returned
    value, possibly None) or :data:`RAISED` for an exception (``value`` is
    the exception type name).  Exceptions are deliberately first-class
    responses: a method that sometimes raises and sometimes returns under
    the same serial circumstances is nondeterministic.
    """

    kind: str
    value: Any = None

    def __str__(self) -> str:
        if self.kind == RAISED:
            return f"raised {self.value}"
        if self.value is None:
            return "ok"
        return f"ok({_fmt_value(self.value)})"

    @staticmethod
    def of(value: Any) -> "Response":
        return Response(OK, value)

    @staticmethod
    def raised(exc: BaseException) -> "Response":
        return Response(RAISED, type(exc).__name__)


#: Event kinds.
CALL = "call"
RETURN = "return"


@dataclass(frozen=True)
class Event:
    """One call or return event in a history.

    ``op_index`` is the per-thread sequence number of the operation the
    event belongs to; together with ``thread`` it identifies the operation
    (the pair plays the role of the paper's matching-call/return rule,
    made explicit so histories never need to re-derive matches).
    """

    kind: str  #: :data:`CALL` or :data:`RETURN`
    thread: int
    op_index: int
    invocation: Invocation | None = None  #: set on call events
    response: Response | None = None  #: set on return events

    @property
    def is_call(self) -> bool:
        return self.kind == CALL

    @property
    def is_return(self) -> bool:
        return self.kind == RETURN

    def __str__(self) -> str:
        name = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"[self.thread] if self.thread < 26 else f"T{self.thread}"
        if self.is_call:
            return f"(call {self.invocation} {name})"
        return f"(ret {self.response} {name})"

    @staticmethod
    def call(thread: int, op_index: int, invocation: Invocation) -> "Event":
        return Event(CALL, thread, op_index, invocation=invocation)

    @staticmethod
    def ret(thread: int, op_index: int, response: Response) -> "Event":
        return Event(RETURN, thread, op_index, response=response)


@dataclass(frozen=True)
class Operation:
    """An invocation with its (possibly pending) response inside a history.

    Identified by ``(thread, op_index)``.  ``call_pos`` / ``return_pos``
    are event positions within the owning history; ``return_pos`` is None
    for pending operations.  The paper's bracketed notation
    ``[o i/r t]`` corresponds to ``str(op)``.
    """

    thread: int
    op_index: int
    invocation: Invocation
    response: Response | None
    call_pos: int
    return_pos: int | None

    @property
    def key(self) -> tuple[int, int]:
        """Stable identity of the operation inside its history."""
        return (self.thread, self.op_index)

    @property
    def pending(self) -> bool:
        return self.return_pos is None

    @property
    def complete(self) -> bool:
        return self.return_pos is not None

    def __str__(self) -> str:
        name = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"[self.thread] if self.thread < 26 else f"T{self.thread}"
        res = "?" if self.response is None else str(self.response)
        return f"[{self.invocation} / {res} @{name}]"
