"""Histories and serial histories (paper Sections 2.1 and 2.3).

:class:`History` is the general object: a finite sequence of call/return
events, possibly marked *stuck* (the paper's ``H#`` notation) when the
execution could not make progress.  It provides the derived notions the
definitions are built from: operations, pending/complete status, thread
subhistories, ``complete(H)``, the precedence partial order ``<H`` and the
projection ``H[e]`` used by Definition 2.

:class:`SerialHistory` is the compact representation used for synthesized
specifications: a linear sequence of completed operations, optionally
followed by one pending operation when the serial execution got stuck.
Phase 1 produces these; the witness search and determinism check consume
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator

from repro.core.events import CALL, Event, Invocation, Operation, Response

__all__ = ["History", "OpView", "Profile", "SerialHistory", "SerialStep"]

#: Per-thread observable behaviour: for each thread, the sequence of
#: (invocation, response-or-None) pairs it performed, in program order.
#: Two histories with equal profiles agree on "what every thread did and
#: saw", which is condition 2 of the serial-witness definition.
Profile = tuple[tuple[tuple[Invocation, Response | None], ...], ...]


@dataclass(frozen=True)
class SerialStep:
    """One operation of a serial history: thread, invocation, response.

    ``response`` is None only for the trailing pending operation of a
    stuck serial history.
    """

    thread: int
    invocation: Invocation
    response: Response | None

    def __str__(self) -> str:
        name = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"[self.thread] if self.thread < 26 else f"T{self.thread}"
        res = "#" if self.response is None else str(self.response)
        return f"{name}:{self.invocation} -> {res}"


class History:
    """A (possibly stuck) well-formed single-object history."""

    def __init__(
        self,
        events: Iterable[Event],
        n_threads: int,
        stuck: bool = False,
        divergent: bool = False,
    ):
        self.events: tuple[Event, ...] = tuple(events)
        self.n_threads = n_threads
        self.stuck = stuck
        # A divergent history is a stuck history that was cut off by the
        # watchdog rather than by a scheduler-detected deadlock/livelock:
        # the pending operation ran away in uninstrumented code.  It is
        # *classified* like stuck (the operation observably never
        # responded), so ``divergent`` is annotation only — deliberately
        # excluded from __eq__/__hash__.
        self.divergent = divergent

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return (
            self.events == other.events
            and self.stuck == other.stuck
            and self.n_threads == other.n_threads
        )

    def __hash__(self) -> int:
        return hash((self.events, self.stuck, self.n_threads))

    def __str__(self) -> str:
        body = " ".join(str(e) for e in self.events)
        return f"{body} #" if self.stuck else body

    # -- operations ------------------------------------------------------

    @cached_property
    def operations(self) -> tuple[Operation, ...]:
        """All operations of the history, in call order."""
        calls: dict[tuple[int, int], tuple[int, Invocation]] = {}
        ops: dict[tuple[int, int], Operation] = {}
        order: list[tuple[int, int]] = []
        for pos, event in enumerate(self.events):
            key = (event.thread, event.op_index)
            if event.is_call:
                assert event.invocation is not None
                calls[key] = (pos, event.invocation)
                order.append(key)
            else:
                call_pos, invocation = calls[key]
                ops[key] = Operation(
                    thread=event.thread,
                    op_index=event.op_index,
                    invocation=invocation,
                    response=event.response,
                    call_pos=call_pos,
                    return_pos=pos,
                )
        for key in order:
            if key not in ops:
                call_pos, invocation = calls[key]
                ops[key] = Operation(
                    thread=key[0],
                    op_index=key[1],
                    invocation=invocation,
                    response=None,
                    call_pos=call_pos,
                    return_pos=None,
                )
        return tuple(ops[key] for key in order)

    @cached_property
    def operation_map(self) -> dict[tuple[int, int], Operation]:
        return {op.key: op for op in self.operations}

    @property
    def pending_operations(self) -> tuple[Operation, ...]:
        return tuple(op for op in self.operations if op.pending)

    @property
    def complete_operations(self) -> tuple[Operation, ...]:
        return tuple(op for op in self.operations if op.complete)

    @property
    def is_full(self) -> bool:
        """Complete (no pending calls) and not stuck."""
        return not self.stuck and all(op.complete for op in self.operations)

    # -- structural predicates (paper 2.1.1) ------------------------------

    def thread_subhistory(self, thread: int) -> tuple[Event, ...]:
        """H|t — the subsequence of events performed by *thread*."""
        return tuple(e for e in self.events if e.thread == thread)

    @cached_property
    def is_well_formed(self) -> bool:
        """Every thread subhistory is serial (calls/returns alternate)."""
        for t in range(self.n_threads):
            expect_call = True
            last_key: tuple[int, int] | None = None
            for event in self.thread_subhistory(t):
                if event.is_call != expect_call:
                    return False
                if event.is_return and (event.thread, event.op_index) != last_key:
                    return False
                last_key = (event.thread, event.op_index)
                expect_call = not expect_call
        return True

    @cached_property
    def is_serial(self) -> bool:
        """Calls and returns alternate and each return matches its call."""
        if not self.events:
            return True
        if not self.events[0].is_call:
            return False
        expect_call = True
        last_key: tuple[int, int] | None = None
        for event in self.events:
            if event.is_call != expect_call:
                return False
            if event.is_return and (event.thread, event.op_index) != last_key:
                return False
            last_key = (event.thread, event.op_index)
            expect_call = not expect_call
        return True

    # -- derived histories -------------------------------------------------

    def complete_history(self) -> "History":
        """complete(H): the history with all pending calls deleted."""
        pending = {op.key for op in self.pending_operations}
        kept = [
            e for e in self.events if not (e.is_call and (e.thread, e.op_index) in pending)
        ]
        return History(kept, self.n_threads, stuck=False)

    def project_pending(self, op: Operation) -> "History":
        """H[e]: drop all pending calls except the one of *op* (Def. 2)."""
        if not op.pending:
            raise ValueError(f"{op} is not pending in this history")
        drop = {o.key for o in self.pending_operations if o.key != op.key}
        kept = [
            e for e in self.events if not (e.is_call and (e.thread, e.op_index) in drop)
        ]
        return History(kept, self.n_threads, stuck=True)

    # -- the precedence order <H (paper 2.1.3) ----------------------------

    def precedes(self, a: Operation, b: Operation) -> bool:
        """e1 <H e2: the response of e1 precedes the invocation of e2."""
        return a.return_pos is not None and a.return_pos < b.call_pos

    def overlapping(self, a: Operation, b: Operation) -> bool:
        """Neither operation precedes the other."""
        return not self.precedes(a, b) and not self.precedes(b, a)

    # -- observational summaries ------------------------------------------

    @cached_property
    def profile(self) -> Profile:
        """Per-thread (invocation, response) sequences (see Profile)."""
        rows: list[list[tuple[Invocation, Response | None]]] = [
            [] for _ in range(self.n_threads)
        ]
        for op in sorted(self.operations, key=lambda o: (o.thread, o.op_index)):
            rows[op.thread].append((op.invocation, op.response))
        return tuple(tuple(row) for row in rows)

    def to_serial(self) -> "SerialHistory":
        """Convert to the compact serial representation (must be serial)."""
        if not self.is_serial:
            raise ValueError("history is not serial")
        steps = [
            SerialStep(op.thread, op.invocation, op.response)
            for op in self.operations
        ]
        if steps and steps[-1].response is None and not self.stuck:
            raise ValueError("pending final operation but history not stuck")
        return SerialHistory(tuple(steps), stuck=self.stuck)


@dataclass(frozen=True)
class OpView:
    """An operation as placed in a serial history: key plus position."""

    thread: int
    op_index: int
    position: int


@dataclass(frozen=True)
class SerialHistory:
    """A serial (fully ordered) history in compact form.

    ``steps`` lists the operations in their serial order.  When ``stuck``
    is True the last step is the pending operation (response None), which
    corresponds to the paper's ``H (o i t) #`` stuck serial histories.
    """

    steps: tuple[SerialStep, ...]
    stuck: bool = False

    def __post_init__(self) -> None:
        for i, step in enumerate(self.steps):
            last = i == len(self.steps) - 1
            if step.response is None and not (last and self.stuck):
                raise ValueError("only the final step of a stuck history may be pending")
        if self.stuck and (not self.steps or self.steps[-1].response is not None):
            raise ValueError("a stuck serial history must end with a pending step")

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        body = "; ".join(str(s) for s in self.steps)
        return f"<{body}>" + (" #" if self.stuck else "")

    @cached_property
    def profile(self) -> Profile:
        n_threads = 1 + max((s.thread for s in self.steps), default=-1)
        rows: list[list[tuple[Invocation, Response | None]]] = [
            [] for _ in range(n_threads)
        ]
        for step in self.steps:
            rows[step.thread].append((step.invocation, step.response))
        return tuple(tuple(row) for row in rows)

    def profile_for(self, n_threads: int) -> Profile:
        """Profile padded with empty rows up to *n_threads* columns."""
        base = list(self.profile)
        while len(base) < n_threads:
            base.append(())
        return tuple(base)

    @cached_property
    def positions(self) -> dict[tuple[int, int], int]:
        """Map (thread, per-thread op index) -> serial position."""
        counters: dict[int, int] = {}
        out: dict[tuple[int, int], int] = {}
        for pos, step in enumerate(self.steps):
            idx = counters.get(step.thread, 0)
            counters[step.thread] = idx + 1
            out[(step.thread, idx)] = pos
        return out

    def tokens(self) -> tuple:
        """Flatten to the event-token sequence used by the determinism trie.

        Tokens alternate ``("c", thread, invocation)`` and
        ``("r", thread, response)``; a stuck history ends with ``"#"``
        after its final call token.
        """
        out: list = []
        for step in self.steps:
            out.append(("c", step.thread, step.invocation))
            if step.response is not None:
                out.append(("r", step.thread, step.response))
        if self.stuck:
            out.append("#")
        return tuple(out)

    def to_history(self, n_threads: int | None = None) -> History:
        """Expand to an explicit event-level :class:`History`."""
        counters: dict[int, int] = {}
        events: list[Event] = []
        for step in self.steps:
            idx = counters.get(step.thread, 0)
            counters[step.thread] = idx + 1
            events.append(Event.call(step.thread, idx, step.invocation))
            if step.response is not None:
                events.append(Event.ret(step.thread, idx, step.response))
        if n_threads is None:
            n_threads = 1 + max((s.thread for s in self.steps), default=-1)
        return History(events, n_threads, stuck=self.stuck)
