"""ASCII timelines for histories — one lane per thread.

The paper argues its reports win developers over because "the component
misbehaves in an externally observable way"; a visual interleaving makes
that immediate.  :func:`render_timeline` draws each thread as a lane and
each operation as an interval between its call and return positions::

    A |= Add(200) =||==== Add(400) ====...
    B        |= TryTake() -> 'Fail' =|

Pending operations (stuck histories) trail off with ``...``; the global
left-to-right order is the event order of the history, so overlap on the
page is overlap in the history (the `<H` relation is readable directly).
"""

from __future__ import annotations

from repro.core.history import History

__all__ = ["render_timeline"]


def _label(op) -> str:
    if op.response is None:
        return f" {op.invocation} "
    if op.response.kind == "raised":
        return f" {op.invocation} !> {op.response.value} "
    if op.response.value is None:
        return f" {op.invocation} "
    return f" {op.invocation} -> {op.response.value!r} "


def render_timeline(history: History, min_cell: int = 2) -> str:
    """Render *history* as per-thread lanes over a shared event axis.

    ``min_cell`` is the minimum width of one event column; columns widen
    as needed so every operation label fits inside its interval.
    """
    n_events = len(history.events)
    ops = list(history.operations)
    # Column widths: start uniform, widen the span of any op whose label
    # does not fit between its call and return columns.
    widths = [min_cell] * (n_events + 1)
    for op in ops:
        start = op.call_pos
        end = op.return_pos if op.return_pos is not None else n_events
        label = _label(op)
        need = len(label) + 2  # the |= =| brackets
        span = list(range(start, min(end, n_events)))
        have = sum(widths[i] for i in span) or 1
        if have < need and span:
            extra = need - have
            per = extra // len(span) + 1
            for i in span:
                widths[i] += per
    # Column start offsets.
    offsets = [0]
    for width in widths:
        offsets.append(offsets[-1] + width)
    total = offsets[n_events]

    names = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    lines = []
    for thread in range(history.n_threads):
        lane = [" "] * (total + 4)
        for op in ops:
            if op.thread != thread:
                continue
            start = offsets[op.call_pos]
            if op.return_pos is not None:
                end = offsets[op.return_pos]
                body_width = max(end - start - 2, 0)
                text = _label(op)
                filler = "=" if op.return_pos is not None else "."
                body = text.center(body_width, filler)[:body_width]
                segment = f"|{body}|"
            else:
                end = total + 2
                body_width = max(end - start - 1, 0)
                text = _label(op)
                body = (text + "." * body_width)[:body_width]
                segment = f"|{body}..."
            for i, ch in enumerate(segment):
                pos = start + i
                if pos < len(lane):
                    lane[pos] = ch
        name = names[thread] if thread < 26 else f"T{thread}"
        lines.append(f"{name} " + "".join(lane).rstrip())
    if history.stuck:
        lines.append("  (execution stuck: pending operations never return)")
    return "\n".join(lines)
