"""Finite tests — the matrices of invocations Line-Up runs (Section 3.1).

A finite test assigns each thread a sequence of invocations; the paper
writes them as matrices with one column per thread (``M^I_{p×q}`` is the
set of all p-row, q-column matrices over invocation alphabet I).  The only
manual step when using Line-Up is picking the invocation alphabet.

Besides the matrix itself, a test may carry *init* and *final* invocation
sequences (Section 4.3): init runs before the columns start (single
threaded), final runs after every column finished — both are recorded as
ordinary operations of thread A, so they participate in specification
synthesis and witness matching like any other operation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Iterator, Sequence

from repro.core.events import Invocation

__all__ = [
    "FiniteTest",
    "enumerate_tests",
    "sample_tests",
]


@dataclass(frozen=True)
class FiniteTest:
    """A finite test: one invocation sequence per thread, plus init/final."""

    columns: tuple[tuple[Invocation, ...], ...]
    init: tuple[Invocation, ...] = ()
    final: tuple[Invocation, ...] = ()

    @staticmethod
    def of(
        columns: Sequence[Sequence[Invocation]],
        init: Sequence[Invocation] = (),
        final: Sequence[Invocation] = (),
    ) -> "FiniteTest":
        return FiniteTest(
            tuple(tuple(col) for col in columns), tuple(init), tuple(final)
        )

    @property
    def n_threads(self) -> int:
        return len(self.columns)

    @property
    def rows(self) -> int:
        return max((len(col) for col in self.columns), default=0)

    @property
    def total_operations(self) -> int:
        return sum(len(col) for col in self.columns) + len(self.init) + len(self.final)

    @property
    def dimension(self) -> tuple[int, int]:
        """(rows, columns) — the paper's p × q."""
        return (self.rows, self.n_threads)

    def column(self, thread: int) -> tuple[Invocation, ...]:
        return self.columns[thread]

    def is_prefix_of(self, other: "FiniteTest") -> bool:
        """m ⊑ m' — every column of self is a prefix of other's (Lemma 8).

        Columns missing from self count as empty prefixes; init/final must
        match exactly for the prefix relation to be meaningful.
        """
        if self.init != other.init or self.final != other.final:
            return False
        if len(self.columns) > len(other.columns):
            return False
        for mine, theirs in zip(self.columns, other.columns):
            if mine != theirs[: len(mine)]:
                return False
        return True

    def render_matrix(self) -> str:
        """Multi-line matrix display in the paper's style."""
        names = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        headers = [
            f"Thread {names[t] if t < 26 else t}" for t in range(self.n_threads)
        ]
        cells = [[str(inv) for inv in col] for col in self.columns]
        widths = [
            max([len(headers[t])] + [len(c) for c in cells[t]])
            for t in range(self.n_threads)
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        for r in range(self.rows):
            row = [
                (cells[t][r] if r < len(cells[t]) else "").ljust(widths[t])
                for t in range(self.n_threads)
            ]
            lines.append("  ".join(row).rstrip())
        if self.init:
            lines.insert(0, "init:  " + "; ".join(str(i) for i in self.init))
        if self.final:
            lines.append("final: " + "; ".join(str(i) for i in self.final))
        return "\n".join(lines)

    def __str__(self) -> str:
        cols = " | ".join(
            ", ".join(str(inv) for inv in col) for col in self.columns
        )
        return f"[{cols}]"


def enumerate_tests(
    invocations: Sequence[Invocation],
    rows: int,
    cols: int,
    init: Sequence[Invocation] = (),
    final: Sequence[Invocation] = (),
) -> Iterator[FiniteTest]:
    """Enumerate all of M^I_{rows×cols} (|I|^(rows*cols) tests).

    This is the inner loop of ``AutoCheck`` (Fig. 6); it grows fast, which
    is exactly why the paper adds random sampling.
    """
    if rows < 0 or cols < 0:
        raise ValueError("dimensions must be non-negative")
    column_choices = list(product(invocations, repeat=rows))
    for matrix in product(column_choices, repeat=cols):
        yield FiniteTest.of(matrix, init=init, final=final)


def sample_tests(
    invocations: Sequence[Invocation],
    rows: int,
    cols: int,
    k: int,
    seed: int = 0,
    init: Sequence[Invocation] = (),
    final: Sequence[Invocation] = (),
) -> list[FiniteTest]:
    """A uniform random sample of k tests from M^I_{rows×cols} (Fig. 8).

    Samples entries independently and deduplicates, which is uniform over
    the matrix space; used by ``RandomCheck`` with the paper's defaults of
    100 tests of dimension 3×3.
    """
    if k < 0:
        raise ValueError("sample size must be non-negative")
    if not invocations and rows * cols * k > 0:
        raise ValueError("cannot sample from an empty invocation alphabet")
    rng = random.Random(seed)
    seen: set[tuple] = set()
    out: list[FiniteTest] = []
    limit = len(invocations) ** (rows * cols) if invocations else 0
    while len(out) < min(k, limit):
        matrix = tuple(
            tuple(rng.choice(invocations) for _ in range(rows)) for _ in range(cols)
        )
        if matrix in seen:
            continue
        seen.add(matrix)
        out.append(FiniteTest.of(matrix, init=init, final=final))
    return out
