"""Violation diagnostics: *why* does this history have no witness?

The paper notes that "the first step in analyzing such a report is to
examine the observation file for a clue to why it does not contain a
serial witness".  This module automates that examination.  For a full
history H without a witness there are exactly two possible reasons:

1. **Ordering conflict** — serial histories with H's profile exist, but
   each one inverts some pair that H orders: an operation pair
   ``e1 <H e2`` placed as ``e2 <S e1``.  The diagnosis lists, per
   candidate, the first violated constraint.
2. **Response mismatch** — no serial execution produced H's per-thread
   responses at all.  The diagnosis finds the serial histories whose
   *invocations* match and reports which operations' responses differ
   (e.g. "TryTake() returned 'Fail', serially it returns 200 or 400").

For a stuck history the analogous question is which pending operation
has no stuck serial justification, and what the serial executions did
instead (completed the operation / never reached this profile).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.checker import NO_STUCK_WITNESS, Violation
from repro.core.events import Operation, Response
from repro.core.history import History, Profile, SerialHistory
from repro.core.spec import ObservationSet
from repro.core.witness import is_witness_for

__all__ = ["Diagnosis", "diagnose_monitor_failure", "explain_violation"]


@dataclass
class Diagnosis:
    """Structured explanation of a witness-search failure."""

    #: "ordering-conflict", "response-mismatch", "blocking" (all three
    #: against the synthesized spec) or "model-mismatch" (the monitor
    #: backend: no linearization matches the explicit sequential model).
    kind: str
    #: per rejected candidate: (candidate, first violated <H pair).
    ordering_conflicts: list[tuple[SerialHistory, Operation, Operation]] = field(
        default_factory=list
    )
    #: operations whose responses no serial execution reproduces, with
    #: the response values the serial executions produced instead.
    response_mismatches: list[tuple[Operation, set]] = field(default_factory=list)
    pending_op: Operation | None = None
    notes: list[str] = field(default_factory=list)
    #: free-form body lines rendered verbatim under the headline (the
    #: monitor backend's counterexample: deepest prefix + stuck frontier).
    details: list[str] = field(default_factory=list)

    def describe(self) -> str:
        lines: list[str] = []
        if self.kind == "ordering-conflict":
            lines.append(
                "serial executions produce these per-thread results, but "
                "only in orders the concurrent history forbids:"
            )
            for candidate, first, second in self.ordering_conflicts:
                lines.append(
                    f"  candidate <{candidate}> places {second} before "
                    f"{first}, yet {first} completed before {second} began"
                )
        elif self.kind == "model-mismatch":
            lines.append(
                "no linearization of this history is an execution of the "
                "sequential model:"
            )
        elif self.kind == "response-mismatch":
            lines.append(
                "no serial execution produces these responses at all:"
            )
            for op, serial_values in self.response_mismatches:
                observed = "blocked" if op.response is None else str(op.response)
                allowed = (
                    ", ".join(sorted(map(str, serial_values)))
                    if serial_values
                    else "(none — this invocation layout never occurs serially)"
                )
                lines.append(
                    f"  {op} observed {observed}; serial executions give: {allowed}"
                )
        else:
            lines.append(
                f"operation {self.pending_op} blocked forever, but every "
                "serial execution reaching this point lets it complete"
            )
        lines.extend(f"  {detail}" for detail in self.details)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def _invocation_layout(profile: Profile) -> tuple:
    """Profile with the responses stripped — the per-thread call shape."""
    return tuple(
        tuple(invocation for invocation, _response in row) for row in profile
    )


def _serial_responses_for(
    observations: ObservationSet, layout: tuple, n_threads: int
) -> dict[tuple[int, int], set]:
    """All responses the serial histories give each (thread, index) slot,
    among serial histories whose invocation layout matches."""
    out: dict[tuple[int, int], set] = {}
    for candidate in observations.full:
        profile = candidate.profile_for(n_threads)
        if _invocation_layout(profile) != layout:
            continue
        for thread, row in enumerate(profile):
            for index, (_invocation, response) in enumerate(row):
                out.setdefault((thread, index), set()).add(response)
    return out


def explain_violation(
    violation: Violation, observations: ObservationSet
) -> Diagnosis:
    """Diagnose a NO_FULL_WITNESS / NO_STUCK_WITNESS violation."""
    history = violation.history
    assert history is not None

    if violation.kind == NO_STUCK_WITNESS:
        diagnosis = Diagnosis(kind="blocking", pending_op=violation.pending_op)
        projected = history.project_pending(violation.pending_op)
        if not observations.stuck_candidates(projected.profile):
            diagnosis.notes.append(
                "no stuck serial history matches the completed operations "
                "around the blocked one"
            )
        return diagnosis

    candidates = observations.full_candidates(history.profile)
    if candidates:
        diagnosis = Diagnosis(kind="ordering-conflict")
        for candidate in candidates:
            conflict = _first_order_conflict(candidate, history)
            if conflict is not None:
                diagnosis.ordering_conflicts.append(
                    (candidate, conflict[0], conflict[1])
                )
        return diagnosis

    diagnosis = Diagnosis(kind="response-mismatch")
    layout = _invocation_layout(history.profile)
    serial_responses = _serial_responses_for(
        observations, layout, history.n_threads
    )
    for op in history.operations:
        allowed = serial_responses.get((op.thread, op.op_index), set())
        if op.response not in allowed:
            diagnosis.response_mismatches.append((op, allowed))
    if not serial_responses:
        diagnosis.notes.append(
            "the serial enumeration never even reached this combination "
            "of completed operations (likely it always blocks earlier)"
        )
    return diagnosis


def diagnose_monitor_failure(verdict, model) -> Diagnosis:
    """Diagnose a monitor-backend failure (no observation set involved).

    *verdict* is a failed :class:`repro.monitor.dispatch.MonitorVerdict`;
    the result is a :class:`Diagnosis` rendered by the same report path
    as the observation-backend diagnoses — one format for both backends.
    """
    if verdict.failed_pending is not None:
        diagnosis = Diagnosis(kind="blocking", pending_op=verdict.failed_pending)
        diagnosis.details.append(
            f"the {model.name!r} model has no reachable state in which "
            f"{verdict.failed_pending.invocation} blocks, so a pending "
            "call can never be justified"
        )
        return diagnosis
    diagnosis = Diagnosis(kind="model-mismatch")
    result = verdict.result
    counterexample = result.counterexample
    if counterexample is not None:
        diagnosis.details.extend(counterexample.describe().splitlines())
    diagnosis.notes.append(
        f"checked against sequential model {model.name!r} "
        f"(engine {result.engine}, {result.configurations} configurations)"
    )
    if result.cell is not None:
        diagnosis.notes.append(
            f"the violation is confined to partition cell {result.cell!r}"
        )
    return diagnosis


def _first_order_conflict(
    candidate: SerialHistory, history: History
) -> tuple[Operation, Operation] | None:
    """The first ``e1 <H e2`` pair that *candidate* inverts, if any."""
    if is_witness_for(candidate, history):
        return None  # pragma: no cover - callers pass rejected candidates
    positions = candidate.positions
    for first in history.operations:
        if first.return_pos is None:
            continue
        for second in history.operations:
            if first is second or not history.precedes(first, second):
                continue
            p1 = positions.get(first.key)
            p2 = positions.get(second.key)
            if p1 is not None and p2 is not None and p1 >= p2:
                return (first, second)
    return None
