"""Automatic drivers: AutoCheck, RandomCheck and test minimization.

* :func:`auto_check` — the algorithm of Fig. 6: enumerate the tests of
  ``M^{I_n}_{n×n}`` for n = 1, 2, ... and Check each.  On a correct
  implementation this never terminates (consistent with undecidability),
  so callers bound it with ``max_n`` and/or ``max_tests``; Theorem 7 says
  an unbounded run FAILs on every implementation that is not
  deterministically linearizable.
* :func:`random_check` — the algorithm of Fig. 8 / Section 4.3: Check a
  uniform random sample of k tests from ``M^I_{i×j}``.  Complete (every
  FAIL is genuine) but no longer sound (bugs may be missed).  The paper's
  evaluation setting is ``i = j = 3, k = 100``.
* :func:`minimize_failing_test` — automates the paper's Section 5.1 step
  "manually remove operations from failing 3x3 test matrices to obtain a
  failing test of minimal dimension": greedily drops operations and
  columns while the check still fails, yielding the minimal scenarios
  reported in Table 2's "dimension" column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.budget import ExplorationControl
from repro.core.checker import (
    CheckConfig,
    CheckResult,
    check_with_harness,
    worst_verdict,
)
from repro.core.events import Invocation
from repro.core.harness import SystemUnderTest, TestHarness
from repro.core.testcase import FiniteTest, enumerate_tests, sample_tests
from repro.runtime import Scheduler

__all__ = [
    "CampaignResult",
    "auto_check",
    "minimize_failing_test",
    "random_check",
]


@dataclass
class CampaignResult:
    """Aggregate outcome of a multi-test campaign (Auto/RandomCheck).

    ``verdict`` follows :data:`repro.core.checker.VERDICT_PRECEDENCE`:
    "FAIL" as soon as any test fails; "CRASHED" when tests were
    quarantined (isolated campaigns) but none failed; else "PASS".
    """

    verdict: str
    tests_run: int = 0
    tests_failed: int = 0
    #: tests quarantined after repeatedly crashing their sandboxed worker
    #: (only isolated campaigns — see :mod:`repro.exec` — produce these).
    tests_crashed: int = 0
    failures: list[CheckResult] = field(default_factory=list)
    results: list[CheckResult] = field(default_factory=list)
    #: why the campaign stopped early ("deadline", "executions",
    #: "decisions", "interrupted"), or None when it ran to completion.
    stop_reason: str | None = None

    @property
    def passed(self) -> bool:
        return self.verdict == "PASS"

    @property
    def first_failure(self) -> CheckResult | None:
        return self.failures[0] if self.failures else None

    @classmethod
    def from_outcomes(cls, outcomes, stop_reason: str | None = None) -> "CampaignResult":
        """Aggregate worker-pool :class:`~repro.exec.TaskOutcome` objects."""
        campaign = cls(
            verdict=worst_verdict(o.verdict for o in outcomes),
            stop_reason=stop_reason,
        )
        for outcome in outcomes:
            campaign.tests_run += 1
            if outcome.verdict == "FAIL":
                campaign.tests_failed += 1
            elif outcome.verdict == "CRASHED":
                campaign.tests_crashed += 1
        return campaign


def _run_campaign(
    subject: SystemUnderTest,
    tests: Iterable[FiniteTest],
    config: CheckConfig | None,
    stop_at_first_failure: bool,
    keep_results: bool,
    scheduler: Scheduler | None = None,
    control: ExplorationControl | None = None,
) -> CampaignResult:
    cfg = config or CheckConfig()
    if control is None and cfg.budget is not None:
        control = ExplorationControl(budget=cfg.budget)
    campaign = CampaignResult(verdict="PASS")
    with TestHarness(
        subject,
        scheduler=scheduler,
        max_steps=cfg.max_steps,
        watchdog=cfg.watchdog_seconds,
        engine=cfg.engine,
    ) as harness:
        for test in tests:
            if control is not None:
                reason = control.halt_reason()
                if reason is not None:
                    campaign.stop_reason = reason
                    break
            result = check_with_harness(harness, test, cfg, control=control)
            campaign.tests_run += 1
            if keep_results:
                campaign.results.append(result)
            if result.failed:
                campaign.verdict = "FAIL"
                campaign.tests_failed += 1
                campaign.failures.append(result)
                if stop_at_first_failure:
                    break
            if result.exhausted:
                campaign.stop_reason = result.exhausted_reason
                break
    return campaign


def auto_check(
    subject: SystemUnderTest,
    invocations: Sequence[Invocation],
    max_n: int,
    config: CheckConfig | None = None,
    max_tests: int | None = None,
    stop_at_first_failure: bool = True,
    scheduler: Scheduler | None = None,
    control: ExplorationControl | None = None,
) -> CampaignResult:
    """AutoCheck (Fig. 6), bounded at dimension *max_n* / *max_tests*.

    For n = 1..max_n, checks every test in ``M^{I_n}_{n×n}`` where I_n is
    the first n elements of *invocations*.  A FAIL proves the subject is
    not deterministically linearizable (Theorem 5); a PASS only covers the
    bounded prefix of the infinite search.
    """

    def tests() -> Iterable[FiniteTest]:
        produced = 0
        for n in range(1, max_n + 1):
            alphabet = list(invocations[:n])
            if not alphabet:
                continue
            for test in enumerate_tests(alphabet, rows=n, cols=n):
                if max_tests is not None and produced >= max_tests:
                    return
                produced += 1
                yield test

    return _run_campaign(
        subject, tests(), config, stop_at_first_failure, keep_results=False,
        scheduler=scheduler, control=control,
    )


def random_check(
    subject: SystemUnderTest,
    invocations: Sequence[Invocation],
    rows: int = 3,
    cols: int = 3,
    samples: int = 100,
    seed: int = 0,
    config: CheckConfig | None = None,
    stop_at_first_failure: bool = False,
    keep_results: bool = False,
    init: Sequence[Invocation] = (),
    final: Sequence[Invocation] = (),
    scheduler: Scheduler | None = None,
    control: ExplorationControl | None = None,
) -> CampaignResult:
    """RandomCheck (Fig. 8): Check a uniform sample of finite tests.

    Defaults are the paper's evaluation setting (3×3 matrices, 100
    samples).  Embarrassingly parallel in principle; here sequential, with
    a deterministic seed so campaigns are reproducible.
    """
    tests = sample_tests(
        list(invocations), rows, cols, samples, seed=seed, init=init, final=final
    )
    return _run_campaign(
        subject, tests, config, stop_at_first_failure, keep_results,
        scheduler=scheduler, control=control,
    )


def _removal_candidates(test: FiniteTest) -> Iterable[FiniteTest]:
    """All tests obtained by deleting one operation or one empty column."""
    for t, column in enumerate(test.columns):
        for r in range(len(column)):
            new_columns = list(test.columns)
            new_columns[t] = column[:r] + column[r + 1 :]
            yield FiniteTest(tuple(new_columns), test.init, test.final)
    for t, column in enumerate(test.columns):
        if not column and len(test.columns) > 1:
            new_columns = list(test.columns)
            del new_columns[t]
            yield FiniteTest(tuple(new_columns), test.init, test.final)


def minimize_failing_test(
    subject: SystemUnderTest,
    test: FiniteTest,
    config: CheckConfig | None = None,
    still_fails: Callable[[CheckResult], bool] | None = None,
    scheduler: Scheduler | None = None,
) -> tuple[FiniteTest, CheckResult]:
    """Greedy ddmin: shrink a failing test while Check still fails.

    Returns the minimized test and its failing CheckResult.  The optional
    *still_fails* predicate restricts what counts as "the same" failure
    (e.g. same violation kind) so minimization does not slide onto a
    different bug.  Raises ValueError if *test* does not fail to begin
    with.
    """
    accept = still_fails if still_fails is not None else (lambda r: r.failed)
    cfg = config or CheckConfig()
    with TestHarness(
        subject,
        scheduler=scheduler,
        max_steps=cfg.max_steps,
        engine=cfg.engine,
    ) as harness:
        result = check_with_harness(harness, test, config)
        if not accept(result):
            raise ValueError("minimize_failing_test requires a failing test")
        current, current_result = test, result
        progress = True
        while progress:
            progress = False
            for candidate in _removal_candidates(current):
                candidate_result = check_with_harness(harness, candidate, config)
                if accept(candidate_result):
                    current, current_result = candidate, candidate_result
                    progress = True
                    break
        # Drop empty columns left behind by operation removal.
        trimmed = tuple(col for col in current.columns if col)
        if trimmed and trimmed != current.columns:
            candidate = FiniteTest(trimmed, current.init, current.final)
            candidate_result = check_with_harness(harness, candidate, config)
            if accept(candidate_result):
                current, current_result = candidate, candidate_result
        return current, current_result
