"""The two-phase Check algorithm (paper Figure 5, Section 3.3).

``check(X, m)`` decides whether the executions of implementation X on
finite test m are consistent with *some* deterministic sequential
specification:

* **Phase 1** enumerates every serial execution of m (unbounded DFS in
  serial mode) and records the full serial histories (set A) and stuck
  serial histories (set B).  If A ∪ B is nondeterministic, FAIL.
* **Phase 2** enumerates concurrent executions (preemption-bounded DFS by
  default, the paper's PB=2; or random sampling) and checks every full
  history against A (Definition 1) and every stuck history against B
  (Definition 2).  Any history without a witness is a FAIL.

Per Theorem 5, a FAIL is a proof that X is linearizable with respect to
*no* deterministic sequential specification; phase 1 runs unbounded so
this completeness guarantee survives the phase-2 preemption bounding
(Section 4.3, last paragraph).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.core.budget import BudgetMeter, ExplorationBudget, ExplorationControl
from repro.core.harness import Phase1Stats, SystemUnderTest, TestHarness
from repro.core.history import History, SerialHistory
from repro.core.spec import NondeterminismWitness, ObservationSet
from repro.core.testcase import FiniteTest
from repro.core.verdict import VERDICT_PRECEDENCE, worst_verdict
from repro.core.witness import check_full_history, check_stuck_history
from repro.runtime import (
    Decision,
    DFSStrategy,
    IterativeDFSStrategy,
    PCTStrategy,
    RandomStrategy,
    Scheduler,
    SchedulingStrategy,
    dfs_with_reduction,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a module cycle
    from repro.core.checkpoint import Checkpointer, CheckResume

__all__ = [
    "CheckConfig",
    "CheckResult",
    "VERDICT_PRECEDENCE",
    "Violation",
    "check",
    "check_against_observations",
    "check_with_harness",
    "worst_verdict",
]

#: Violation kinds.
NONDETERMINISTIC = "nondeterministic-specification"
NO_FULL_WITNESS = "non-linearizable-history"
NO_STUCK_WITNESS = "non-linearizable-blocking"

# VERDICT_PRECEDENCE / worst_verdict historically lived here; they are
# re-exported from :mod:`repro.core.verdict`, the single source of the
# severity order shared by campaigns, swarms, watches and generation.


@dataclass(frozen=True)
class CheckConfig:
    """Tuning knobs for one ``Check`` run.

    The defaults mirror the paper: exhaustive phase 1, DFS phase 2 with
    preemption bound 2 (the CHESS default the paper uses "except where it
    performed unacceptably slow").  ``phase2_strategy="random"`` switches
    phase 2 to random-walk sampling of ``phase2_executions`` schedules;
    ``"iterative"`` uses CHESS's iterative context bounding (exhaust
    bound 0, then 1, ... up to ``preemption_bound``), which reaches the
    simplest witness of a bug first.  ``max_*_executions`` are safety
    caps for interactive use; None means unbounded (exhaustive within
    the bound).
    """

    preemption_bound: int | None = 2
    phase2_strategy: str = "dfs"  #: "dfs", "iterative", "random" or "pct"
    #: scheduler engine: ``"baton"`` (real threads serialized by semaphore
    #: handoff) or ``"coop"`` (zero-thread generator tasks; same decision
    #: traces, much faster).  Only applies to schedulers the check
    #: creates, not to a caller-provided one.
    engine: str = "baton"
    pct_depth: int = 3  #: bug depth for phase2_strategy="pct"
    phase2_executions: int = 2000  #: sample size when phase2_strategy="random"
    seed: int = 0
    max_serial_executions: int | None = None
    max_concurrent_executions: int | None = 20_000
    max_steps: int = 20_000
    stop_at_first_violation: bool = True
    #: exploration budget; when tripped, the check stops with verdict
    #: "EXHAUSTED" and partial statistics (unlike the ``max_*`` caps
    #: above, which silently truncate for interactive use).
    budget: ExplorationBudget | None = None
    #: enable the scheduler watchdog: max seconds a single operation may
    #: run between scheduling points before the execution is classified
    #: divergent.  None (the default) disables the watchdog.  Only applies
    #: to schedulers the check creates, not to a caller-provided one.
    watchdog_seconds: float | None = None
    #: phase-2 verification backend.  ``"observations"`` checks histories
    #: against the phase-1 synthesized specification (Definitions 1/2,
    #: complete per Theorem 5); ``"monitor"`` skips phase 1 entirely and
    #: checks each history against the explicit sequential ``model`` via
    #: :mod:`repro.monitor` — a PASS then certifies linearizability with
    #: respect to that one model only.
    backend: str = "observations"
    #: sequential model name for the monitor backend (see
    #: :func:`repro.monitor.get_model`); required when backend="monitor".
    model: str | None = None
    #: monitor engine: "auto", "wgl", "compositional" or "specialized".
    monitor_engine: str = "auto"
    #: directory to dump every explored concurrent history into as a
    #: JSONL trace file (:mod:`repro.monitor.trace`); None disables.
    dump_traces: str | None = None
    #: phase-2 schedule-space reduction: ``"none"``, ``"sleep"`` (sleep
    #: sets) or ``"dpor"`` (dynamic partial-order reduction).  Only the
    #: DFS-family strategies ("dfs", "iterative") support a reduction;
    #: phase 1 is never reduced (Theorem 5 needs every serial history).
    reduction: str = "none"

    def make_phase2_strategy(self) -> SchedulingStrategy:
        if self.phase2_strategy == "dfs":
            return dfs_with_reduction(self.reduction, self.preemption_bound)
        if self.phase2_strategy == "iterative":
            bound = 2 if self.preemption_bound is None else self.preemption_bound
            return IterativeDFSStrategy(max_bound=bound, reduction=self.reduction)
        if self.reduction != "none":
            raise ValueError(
                f"reduction {self.reduction!r} requires a DFS-family phase-2 "
                f"strategy (dfs or iterative), not {self.phase2_strategy!r}"
            )
        if self.phase2_strategy == "random":
            return RandomStrategy(self.phase2_executions, seed=self.seed)
        if self.phase2_strategy == "pct":
            return PCTStrategy(
                self.phase2_executions, depth=self.pct_depth, seed=self.seed
            )
        raise ValueError(f"unknown phase2 strategy {self.phase2_strategy!r}")


@dataclass(frozen=True)
class Violation:
    """Evidence that the subject is not deterministically linearizable.

    Exactly one of the payloads is set, depending on ``kind``:

    * :data:`NONDETERMINISTIC` — ``nondeterminism`` holds the two serial
      histories whose common prefix ends in a call (Fig. 5 line 4).
    * :data:`NO_FULL_WITNESS` — ``history`` is a full concurrent history
      with no serial witness in A (line 8).
    * :data:`NO_STUCK_WITNESS` — ``history`` is a stuck concurrent history
      and ``pending_op`` has no stuck serial witness for H[e] (line 13).

    ``decisions`` is the scheduler decision trace of the violating
    execution, replayable with :class:`repro.runtime.ReplayStrategy`.
    """

    kind: str
    test: FiniteTest
    history: History | None = None
    pending_op: Any = None
    nondeterminism: NondeterminismWitness | None = None
    decisions: tuple[Decision, ...] = ()
    #: pre-computed :class:`repro.core.explain.Diagnosis` for violations
    #: found by the monitor backend, which has no observation set to
    #: diagnose against; the report renderer prefers this when present.
    diagnosis: Any = None

    def describe(self) -> str:
        if self.kind == NONDETERMINISTIC:
            assert self.nondeterminism is not None
            return f"serial behaviour is nondeterministic: {self.nondeterminism.describe()}"
        if self.kind == NO_FULL_WITNESS:
            return f"concurrent history has no serial witness: {self.history}"
        return (
            f"stuck operation {self.pending_op} is never allowed to block "
            f"serially, yet blocked in: {self.history}"
        )


@dataclass
class CheckResult:
    """Outcome and statistics of one ``Check(X, m)`` run (Table 2 inputs).

    ``verdict`` is ``"PASS"``, ``"FAIL"``, or ``"EXHAUSTED"`` — the last
    when an exploration budget tripped (or the run was interrupted)
    before any violation was found.  A FAIL always wins over EXHAUSTED:
    per Theorem 5 a violation is a proof regardless of how much of the
    search space was left unexplored.
    """

    verdict: str  #: "PASS", "FAIL" or "EXHAUSTED"
    test: FiniteTest
    violations: list[Violation] = field(default_factory=list)
    observations: ObservationSet | None = None
    phase1: Phase1Stats = field(default_factory=Phase1Stats)
    phase1_seconds: float = 0.0
    phase2_executions: int = 0
    phase2_full: int = 0
    phase2_stuck: int = 0
    phase2_seconds: float = 0.0
    #: subset of ``phase2_stuck`` that the watchdog cut off (divergent).
    phase2_divergent: int = 0
    #: why exploration stopped early ("deadline", "executions",
    #: "decisions", "interrupted"); None for a completed run.
    exhausted_reason: str | None = None
    #: False when phase 2 stopped before its strategy was exhausted
    #: (budget trip, interrupt, or the legacy max_concurrent cap).
    phase2_complete: bool = True
    #: phase-2 reduction mode the run used ("none", "sleep", "dpor").
    reduction: str = "none"
    #: schedules actually executed in phase 2 (== ``phase2_executions``,
    #: kept separate so reports can show the reduction triple together).
    schedules_explored: int = 0
    #: distinct Mazurkiewicz equivalence classes among the explored
    #: schedules (by canonical happens-before fingerprint).
    equivalence_classes: int = 0
    #: schedules the reduction skipped that an unreduced (but equally
    #: bounded) DFS would have executed; 0 under ``reduction="none"``.
    schedules_pruned: int = 0

    @property
    def passed(self) -> bool:
        return self.verdict == "PASS"

    @property
    def failed(self) -> bool:
        return self.verdict == "FAIL"

    @property
    def exhausted(self) -> bool:
        return self.verdict == "EXHAUSTED"

    @property
    def violation(self) -> Violation | None:
        return self.violations[0] if self.violations else None


def check(
    subject: SystemUnderTest,
    test: FiniteTest,
    config: CheckConfig | None = None,
    scheduler: Scheduler | None = None,
    *,
    control: ExplorationControl | None = None,
    checkpointer: "Checkpointer | None" = None,
    resume: "CheckResume | None" = None,
    fingerprints: "Any | None" = None,
) -> CheckResult:
    """Run the two-phase Check of Figure 5 on one finite test."""
    cfg = config or CheckConfig()
    with TestHarness(
        subject,
        scheduler=scheduler,
        max_steps=cfg.max_steps,
        watchdog=cfg.watchdog_seconds,
        engine=cfg.engine,
    ) as harness:
        return check_with_harness(
            harness,
            test,
            cfg,
            control=control,
            checkpointer=checkpointer,
            resume=resume,
            fingerprints=fingerprints,
        )


def check_with_harness(
    harness: TestHarness,
    test: FiniteTest,
    config: CheckConfig | None = None,
    *,
    control: ExplorationControl | None = None,
    checkpointer: "Checkpointer | None" = None,
    resume: "CheckResume | None" = None,
    fingerprints: "Any | None" = None,
) -> CheckResult:
    """Like :func:`check` but reusing an existing harness/scheduler.

    *control* carries the exploration budget and stop flag (one is
    derived from ``config.budget`` when absent); *checkpointer*
    periodically persists the exploration frontier; *resume* continues a
    previous partial run parsed from a checkpoint.  *fingerprints* is a
    caller-owned :class:`repro.reduction.FingerprintSet` that phase 2
    populates with the digest of every explored execution — the
    coverage-harvest hook of :mod:`repro.generate` (without it only the
    class *count* survives in the result).
    """
    cfg = config or CheckConfig()
    if control is None and cfg.budget is not None:
        control = ExplorationControl(budget=cfg.budget)
    if (
        control is not None
        and resume is not None
        and resume.budget_snapshot is not None
    ):
        # Honour the original budget across sessions: the restored meter
        # carries the elapsed time and counts of the interrupted run.
        control.meter = BudgetMeter.from_snapshot(resume.budget_snapshot)
    if control is not None:
        control.start()

    if cfg.backend == "monitor":
        # Model-based monitoring needs no synthesized specification, so
        # phase 1 is skipped entirely; each phase-2 history is checked
        # directly against the explicit sequential model.
        if cfg.model is None:
            raise ValueError("backend 'monitor' requires a model name")
        if checkpointer is not None or resume is not None:
            raise ValueError(
                "the monitor backend does not support checkpoint/resume"
            )
        result = CheckResult(verdict="PASS", test=test)
        _run_phase2(
            harness, test, None, cfg, result,
            control=control, fingerprints=fingerprints,
        )
        return result
    if cfg.backend != "observations":
        raise ValueError(f"unknown check backend {cfg.backend!r}")

    def budget_snapshot() -> dict | None:
        if control is not None and control.meter is not None:
            return control.meter.snapshot()
        return None

    # ---- Phase 1: synthesize the specification from serial executions.
    phase1_base = resume.phase1_seconds if resume is not None else 0.0
    if resume is not None and resume.phase == "phase2":
        assert resume.observations is not None
        observations = resume.observations
        stats = resume.phase1
        phase1_seconds = phase1_base
    else:
        t0 = time.perf_counter()
        serial_strategy = (
            resume.strategy
            if resume is not None and resume.strategy is not None
            else DFSStrategy(preemption_bound=None)
        )
        on_execution = None
        if checkpointer is not None:
            from repro.core.checkpoint import build_check_state

            def on_execution(obs, st, strat) -> None:
                checkpointer.tick(
                    lambda: build_check_state(
                        test=test,
                        config=cfg,
                        phase="phase1",
                        strategy=strat,
                        observations=obs,
                        phase1=st,
                        phase1_seconds=phase1_base + time.perf_counter() - t0,
                        budget_snapshot=budget_snapshot(),
                    )
                )

        observations, stats = harness.run_serial(
            test,
            max_executions=cfg.max_serial_executions,
            observations=resume.observations if resume is not None else None,
            stats=resume.phase1 if resume is not None else None,
            strategy=serial_strategy,
            control=control,
            on_execution=on_execution,
        )
        phase1_seconds = phase1_base + time.perf_counter() - t0

    result = CheckResult(
        verdict="PASS",
        test=test,
        observations=observations,
        phase1=stats,
        phase1_seconds=phase1_seconds,
    )
    if not observations.is_deterministic:
        # Sound even on a partial observation set: the two conflicting
        # serial histories exist regardless of what was left unexplored.
        result.verdict = "FAIL"
        result.violations.append(
            Violation(
                kind=NONDETERMINISTIC,
                test=test,
                nondeterminism=observations.nondeterminism,
            )
        )
        return result
    if stats.stop_reason is not None:
        # Phase 1 cut short by the budget or an interrupt.  Phase 2
        # against a partial specification could report unsound FAILs
        # (a legitimate serial witness may simply not have been
        # enumerated yet), so stop here with an explicit EXHAUSTED.
        result.verdict = "EXHAUSTED"
        result.exhausted_reason = stats.stop_reason
        result.phase2_complete = False
        if checkpointer is not None:
            from repro.core.checkpoint import build_check_state

            checkpointer.save(
                build_check_state(
                    test=test,
                    config=cfg,
                    phase="phase1",
                    strategy=serial_strategy,
                    observations=observations,
                    phase1=stats,
                    phase1_seconds=phase1_seconds,
                    budget_snapshot=budget_snapshot(),
                )
            )
        return result

    # ---- Phase 2: check the concurrent executions against A and B.
    phase2_strategy = None
    if resume is not None and resume.phase == "phase2":
        from repro.reduction import FingerprintSet

        phase2_strategy = resume.strategy
        result.phase2_executions = int(resume.phase2.get("executions", 0))
        result.phase2_full = int(resume.phase2.get("full", 0))
        result.phase2_stuck = int(resume.phase2.get("stuck", 0))
        result.phase2_divergent = int(resume.phase2.get("divergent", 0))
        result.phase2_seconds = float(resume.phase2.get("seconds", 0.0))
        restored = FingerprintSet.from_snapshot(
            resume.phase2.get("fingerprints")
        )
        if fingerprints is None:
            fingerprints = restored
        else:
            fingerprints.update(restored)
    _run_phase2(
        harness,
        test,
        observations,
        cfg,
        result,
        control=control,
        checkpointer=checkpointer,
        strategy=phase2_strategy,
        fingerprints=fingerprints,
    )
    return result


def check_against_observations(
    harness: TestHarness,
    test: FiniteTest,
    observations: ObservationSet,
    config: CheckConfig | None = None,
    *,
    control: ExplorationControl | None = None,
    strategy: SchedulingStrategy | None = None,
    fingerprints: "Any | None" = None,
) -> CheckResult:
    """Spec-relative check: phase 2 only, against a *given* specification.

    This is Definition 3 with an explicit specification instead of a
    synthesized one — the setting of the paper's Section 2.2.2 example,
    where the Fig. 4 counter is perfectly consistent with *some*
    deterministic spec ("get poisons the lock") yet violates the intended
    Fig. 3 spec.  The observation set can be hand-written or synthesized
    from a reference implementation's phase 1 (differential checking).

    *strategy* and *fingerprints* let a caller seed the exploration with
    a restored frontier and fingerprint set — the shard workers of
    :mod:`repro.swarm` run exactly this entry point per lease.
    """
    cfg = config or CheckConfig()
    if control is None and cfg.budget is not None:
        control = ExplorationControl(budget=cfg.budget)
    result = CheckResult(verdict="PASS", test=test, observations=observations)
    _run_phase2(
        harness,
        test,
        observations,
        cfg,
        result,
        control=control,
        strategy=strategy,
        fingerprints=fingerprints,
    )
    return result


def _run_phase2(
    harness: TestHarness,
    test: FiniteTest,
    observations: ObservationSet | None,
    cfg: CheckConfig,
    result: CheckResult,
    *,
    control: ExplorationControl | None = None,
    checkpointer: "Checkpointer | None" = None,
    strategy: SchedulingStrategy | None = None,
    fingerprints: "Any | None" = None,
) -> None:
    from repro.reduction import FingerprintSet, execution_fingerprint

    t1 = time.perf_counter()
    seconds_base = result.phase2_seconds
    if strategy is None:
        strategy = cfg.make_phase2_strategy()
    if fingerprints is None:
        fingerprints = FingerprintSet()
    result.reduction = cfg.reduction
    if control is not None:
        control.start()

    monitor_model = None
    if cfg.backend == "monitor":
        from repro.monitor import get_model

        monitor_model = get_model(cfg.model or "")

    trace_writer = None
    if cfg.dump_traces:
        from repro.core.checkpoint import test_to_dict
        from repro.monitor.trace import TraceWriter, default_trace_path

        test_dict = test_to_dict(test)
        trace_writer = TraceWriter(
            default_trace_path(cfg.dump_traces, harness.subject.name, test_dict),
            n_threads=test.n_threads,
            subject=harness.subject.name,
            test=test_dict,
        )
    remaining = cfg.max_concurrent_executions
    if remaining is not None:
        remaining = max(0, remaining - result.phase2_executions)

    def make_state() -> dict:
        from repro.core.checkpoint import build_check_state

        return build_check_state(
            test=test,
            config=cfg,
            phase="phase2",
            strategy=strategy,
            observations=observations,
            phase1=result.phase1,
            phase1_seconds=result.phase1_seconds,
            phase2={
                "executions": result.phase2_executions,
                "full": result.phase2_full,
                "stuck": result.phase2_stuck,
                "divergent": result.phase2_divergent,
                "seconds": seconds_base + time.perf_counter() - t1,
                "fingerprints": fingerprints.snapshot(),
            },
            budget_snapshot=(
                control.meter.snapshot()
                if control is not None and control.meter is not None
                else None
            ),
        )

    halted: str | None = None
    try:
        for history, outcome in harness.explore_concurrent(
            test, strategy, max_executions=remaining
        ):
            result.phase2_executions += 1
            fingerprints.add(execution_fingerprint(outcome))
            if control is not None:
                control.note(outcome)
            if history.stuck:
                result.phase2_stuck += 1
                if history.divergent:
                    result.phase2_divergent += 1
            else:
                result.phase2_full += 1
            if monitor_model is not None:
                violation = _monitor_violation(
                    history, monitor_model, cfg, test, outcome
                )
            else:
                assert observations is not None
                violation = _observation_violation(
                    history, observations, test, outcome
                )
            if trace_writer is not None:
                trace_writer.write(
                    history, verdict="FAIL" if violation is not None else None
                )
            if violation is not None:
                result.verdict = "FAIL"
                result.violations.append(violation)
                if cfg.stop_at_first_violation:
                    break
            if control is not None:
                halted = control.halt_reason()
                if halted is not None:
                    break
            if checkpointer is not None:
                checkpointer.tick(make_state)
    finally:
        if trace_writer is not None:
            trace_writer.close()
    result.phase2_seconds = seconds_base + time.perf_counter() - t1
    result.schedules_explored = result.phase2_executions
    result.equivalence_classes = len(fingerprints)
    result.schedules_pruned = getattr(strategy, "pruned", 0)
    if halted is not None:
        result.exhausted_reason = halted
        result.phase2_complete = False
        if result.verdict != "FAIL":
            # A FAIL found before the budget tripped remains a proof;
            # otherwise the run is explicitly marked incomplete.
            result.verdict = "EXHAUSTED"
        if checkpointer is not None:
            checkpointer.save(make_state())
    elif strategy.more():
        result.phase2_complete = False


def _observation_violation(
    history: History,
    observations: ObservationSet,
    test: FiniteTest,
    outcome: Any,
) -> Violation | None:
    """Definition 1/2 verdict of one history against the synthesized spec."""
    if history.stuck:
        stuck_check = check_stuck_history(history, observations)
        if not stuck_check.ok:
            return Violation(
                kind=NO_STUCK_WITNESS,
                test=test,
                history=history,
                pending_op=stuck_check.failed,
                decisions=tuple(outcome.decisions),
            )
        return None
    if check_full_history(history, observations) is None:
        return Violation(
            kind=NO_FULL_WITNESS,
            test=test,
            history=history,
            decisions=tuple(outcome.decisions),
        )
    return None


def _monitor_violation(
    history: History,
    model: Any,
    cfg: CheckConfig,
    test: FiniteTest,
    outcome: Any,
) -> Violation | None:
    """Model-based verdict of one history (the monitor backend)."""
    from repro.core.explain import diagnose_monitor_failure
    from repro.monitor.dispatch import monitor_history

    verdict = monitor_history(history, model, engine=cfg.monitor_engine)
    if verdict.ok:
        return None
    return Violation(
        kind=NO_STUCK_WITNESS if verdict.failed_pending is not None else NO_FULL_WITNESS,
        test=test,
        history=history,
        pending_op=verdict.failed_pending,
        decisions=tuple(outcome.decisions),
        diagnosis=diagnose_monitor_failure(verdict, model),
    )
