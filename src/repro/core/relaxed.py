"""Extensions for nondeterministic specifications (paper Section 6).

The paper's conclusion names two desired extensions: support for
*asynchronous* methods (like the cancellation of finding K) and for
*nondeterministic* methods, "such as methods that may fail on
interference" (findings H/I/J).  This module implements both as a
relaxed checking mode:

* **Nondeterministic specifications.**  ``check_relaxed`` skips the
  determinism gate of Fig. 5 line 4: phase 1 simply records the (possibly
  nondeterministic) set of serial behaviours and phase 2 checks
  membership against all of them.  The completeness guarantee of
  Theorem 5 weakens — a PASS no longer implies deterministic
  linearizability, only linearizability with respect to the synthesized
  (nondeterministic) specification — but every FAIL is still a genuine
  non-linearizability proof.  This absorbs asynchronous-effect classes
  like CancellationTokenSource, whose serial behaviour is legitimately
  nondeterministic.

* **Interference failures.**  An :class:`InterferencePolicy` declares,
  per method, responses that the specification additionally allows
  whenever the operation *overlaps* some other operation (an unordered
  bag's ``TryTake`` may miss elements that are mid-operation; a lagging
  ``Count`` may read 0).  A spuriously-failed operation is semantically a
  no-op, so the relaxed witness check removes those operations from the
  history and looks for a serial witness of the *remaining* operations —
  which requires synthesizing specifications for the reduced tests,
  cached per reduction.

With the policies of :data:`DOTNET_POLICIES`, the documented behaviours
H, I and J stop being reported while every real bug (A–G) and the truly
nonlinearizable Barrier (L) are still caught — exactly the triage the
paper wished for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.checker import (
    NO_FULL_WITNESS,
    NO_STUCK_WITNESS,
    CheckConfig,
    CheckResult,
    Violation,
)
from repro.core.events import Operation
from repro.core.harness import TestHarness
from repro.core.history import History
from repro.core.spec import ObservationSet
from repro.core.testcase import FiniteTest
from repro.core.witness import check_full_history, check_stuck_history

__all__ = [
    "DOTNET_POLICIES",
    "InterferencePolicy",
    "InterferenceRule",
    "check_relaxed",
]


@dataclass(frozen=True)
class InterferenceRule:
    """One method that may spuriously produce *responses* under interference.

    ``method`` names the invocation; ``responses`` are the response
    *values* the specification additionally allows when the operation
    overlaps a qualifying interferer.  ``interferers`` narrows which
    overlapping methods count — the precision matters: .NET documents
    that ``TryTake`` may fail when racing other *consumers*, so a
    ``TryTake`` that fails while overlapping only an ``Add`` (the Fig. 1
    bug) is still a violation.  ``interferers=None`` accepts any
    overlapping operation.  A matching operation is treated as a no-op
    (it must not have affected the object) for witness purposes.
    """

    method: str
    responses: tuple = ("Fail",)
    interferers: tuple[str, ...] | None = None


class InterferencePolicy:
    """A set of interference rules, keyed by method name."""

    def __init__(self, rules: Iterable[InterferenceRule] = ()) -> None:
        self._rules = {rule.method: rule for rule in rules}

    def __bool__(self) -> bool:
        return bool(self._rules)

    def allows(self, op: Operation, history: History) -> bool:
        """Whether *op*'s response is excusable as an interference effect."""
        rule = self._rules.get(op.invocation.method)
        if rule is None or op.response is None:
            return False
        if op.response.kind != "ok" or op.response.value not in rule.responses:
            return False
        return any(
            history.overlapping(op, other)
            for other in history.operations
            if other.key != op.key
            and (
                rule.interferers is None
                or other.invocation.method in rule.interferers
            )
        )

    def relaxable_ops(self, history: History) -> tuple[Operation, ...]:
        """All complete operations of *history* excusable under this policy."""
        return tuple(
            op
            for op in history.complete_operations
            if self.allows(op, history)
        )


#: The policies matching the .NET team's documentation updates for the
#: intentional nondeterminism findings H, I and J:
#: * H — an unordered bag's TryTake/TryPeek may miss elements that any
#:   concurrent operation is touching;
#: * I — Count lags producers: it may read 0 while an Add is in flight;
#: * J — TryTake's zero-timeout wait may fail when racing other
#:   *consumers* (but failing against only an Add is the Fig. 1 bug).
DOTNET_POLICIES: dict[str, InterferencePolicy] = {
    "ConcurrentBag": InterferencePolicy(
        [InterferenceRule("TryTake"), InterferenceRule("TryPeek")]
    ),
    "BlockingCollection": InterferencePolicy(
        [
            InterferenceRule("TryTake", interferers=("TryTake", "Take")),
            InterferenceRule("Count", responses=(0,), interferers=("Add", "TryAdd")),
        ]
    ),
}


def _reduced_test(test: FiniteTest, removed: frozenset) -> FiniteTest:
    """The finite test with the operations in *removed* deleted.

    ``removed`` holds (thread, op_index) keys in the harness's numbering:
    thread 0's init ops come first in its column numbering, final ops
    last, so positions map directly onto the concatenated sequences.
    """
    init = list(test.init)
    final = list(test.final)
    columns = [list(column) for column in test.columns]
    for thread, op_index in sorted(removed, reverse=True):
        if thread == 0:
            if op_index < len(init):
                del init[op_index]
                continue
            column_index = op_index - len(init)
            if column_index < len(columns[0]):
                del columns[0][column_index]
                continue
            del final[column_index - len(columns[0])]
        else:
            del columns[thread][op_index]
    return FiniteTest.of(columns, init=init, final=final)


def _reduced_history(history: History, removed: frozenset) -> History:
    """The history with the removed operations' events deleted and the
    remaining per-thread op indices renumbered to match the reduced test."""
    # Renumber: for each thread, dropped indices shift later ops down.
    shift: dict[tuple[int, int], int] = {}
    for thread in range(history.n_threads):
        dropped = sorted(i for t, i in removed if t == thread)
        for op in history.operations:
            if op.thread != thread:
                continue
            offset = sum(1 for d in dropped if d < op.op_index)
            shift[op.key] = op.op_index - offset
    events = []
    for event in history.events:
        key = (event.thread, event.op_index)
        if key in removed:
            continue
        events.append(
            type(event)(
                kind=event.kind,
                thread=event.thread,
                op_index=shift[key],
                invocation=event.invocation,
                response=event.response,
            )
        )
    return History(events, history.n_threads, stuck=history.stuck)


def check_relaxed(
    harness: TestHarness,
    test: FiniteTest,
    config: CheckConfig | None = None,
    policy: InterferencePolicy | None = None,
) -> CheckResult:
    """Two-phase check with a nondeterministic spec and interference rules.

    Like :func:`repro.core.checker.check_with_harness` but: (1) phase 1
    does not require determinism, and (2) a history without a witness may
    be excused by removing policy-allowed spurious operations and finding
    a witness for the rest against the reduced test's synthesized
    specification.
    """
    cfg = config or CheckConfig()
    policy = policy or InterferencePolicy()

    t0 = time.perf_counter()
    observations, stats = harness.run_serial(
        test, max_executions=cfg.max_serial_executions
    )
    result = CheckResult(
        verdict="PASS",
        test=test,
        observations=observations,
        phase1=stats,
        phase1_seconds=time.perf_counter() - t0,
    )
    # NOTE: no determinism gate — that is the point of the extension.

    reduced_specs: dict[frozenset, ObservationSet] = {}

    def reduced_observations(removed: frozenset) -> ObservationSet:
        if removed not in reduced_specs:
            reduced_specs[removed] = harness.run_serial(
                _reduced_test(test, removed),
                max_executions=cfg.max_serial_executions,
            )[0]
        return reduced_specs[removed]

    def excused(history: History) -> bool:
        relaxable = policy.relaxable_ops(history)
        if not relaxable:
            return False
        removed = frozenset(op.key for op in relaxable)
        reduced = _reduced_history(history, removed)
        spec = reduced_observations(removed)
        if history.stuck:
            return check_stuck_history(reduced, spec).ok
        return check_full_history(reduced, spec) is not None

    t1 = time.perf_counter()
    strategy = cfg.make_phase2_strategy()
    for history, outcome in harness.explore_concurrent(
        test, strategy, max_executions=cfg.max_concurrent_executions
    ):
        result.phase2_executions += 1
        violation: Violation | None = None
        if history.stuck:
            result.phase2_stuck += 1
            stuck_check = check_stuck_history(history, observations)
            if not stuck_check.ok and not excused(history):
                violation = Violation(
                    kind=NO_STUCK_WITNESS,
                    test=test,
                    history=history,
                    pending_op=stuck_check.failed,
                    decisions=tuple(outcome.decisions),
                )
        else:
            result.phase2_full += 1
            if check_full_history(history, observations) is None and not excused(
                history
            ):
                violation = Violation(
                    kind=NO_FULL_WITNESS,
                    test=test,
                    history=history,
                    decisions=tuple(outcome.decisions),
                )
        if violation is not None:
            result.verdict = "FAIL"
            result.violations.append(violation)
            if cfg.stop_at_first_violation:
                break
    result.phase2_seconds = time.perf_counter() - t1
    return result
