"""Human-readable violation reports (paper Figure 7, bottom).

When Line-Up finds a violation it reports the violating concurrent
history in the same notation as the observation file, together with the
test matrix and — because "the first step in analyzing such a report is
to examine the observation file for a clue" — the matching observation
section (the serial histories with the same per-thread operations, if
any).
"""

from __future__ import annotations

from repro.core.checker import (
    NO_FULL_WITNESS,
    NO_STUCK_WITNESS,
    NONDETERMINISTIC,
    CheckResult,
    Violation,
)
from repro.core.history import History
from repro.core.observations import _op_ids_for_profile, history_line
from repro.core.spec import ObservationSet

__all__ = [
    "check_result_to_dict",
    "render_check_result",
    "render_generation_report",
    "render_violation",
]


def _thread_label(thread: int) -> str:
    names = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    return names[thread] if thread < 26 else f"T{thread}"


def _render_ops_table(history: History) -> list[str]:
    ids = _op_ids_for_profile(history.profile)
    lines = []
    for thread in range(history.n_threads):
        entries = []
        for op in history.operations:
            if op.thread != thread:
                continue
            suffix = "B" if op.pending else ""
            entries.append(f"{ids[op.key]}{suffix}")
        lines.append(f'  <thread id="{_thread_label(thread)}">{" ".join(entries)}</thread>')
    for op in sorted(history.operations, key=lambda o: ids[o.key]):
        attrs = [f'id="{ids[op.key]}"', f'name="{op.invocation.method}"']
        if op.invocation.args:
            attrs.append(f'args="{op.invocation.args!r}"')
        if op.response is not None:
            if op.response.kind == "raised":
                attrs.append(f'raised="{op.response.value}"')
            else:
                attrs.append(f'result="{op.response.value!r}"')
        lines.append(f"  <op {' '.join(attrs)} />")
    lines.append(f"  <history>{history_line(history, ids)}</history>")
    return lines


def render_violation(
    violation: Violation, observations: ObservationSet | None = None
) -> str:
    """Render one violation the way Line-Up reports it to the user."""
    lines = ["Line-Up encountered a violation of deterministic linearizability."]
    lines.append("")
    lines.append("Test:")
    for row in violation.test.render_matrix().splitlines():
        lines.append(f"  {row}")
    lines.append("")
    if violation.kind == NONDETERMINISTIC:
        assert violation.nondeterminism is not None
        lines.append("The serial specification is nondeterministic:")
        lines.append(f"  {violation.nondeterminism.describe()}")
        lines.append(f"  history 1: {violation.nondeterminism.first}")
        lines.append(f"  history 2: {violation.nondeterminism.second}")
        return "\n".join(lines)

    assert violation.history is not None
    if violation.kind == NO_FULL_WITNESS:
        lines.append("Non-linearizable concurrent history (no serial witness):")
    else:
        lines.append(
            f"Erroneous blocking: operation {violation.pending_op} is stuck, "
            "but no serial execution blocks there:"
        )
    lines.extend(_render_ops_table(violation.history))
    lines.append("")
    lines.append("Timeline:")
    from repro.core.timeline import render_timeline

    for row in render_timeline(violation.history).splitlines():
        lines.append(f"  {row}")

    if violation.diagnosis is not None:
        # Monitor-backend violations carry their diagnosis pre-computed
        # (there is no observation set to examine) — same report shape.
        lines.append("")
        lines.append("Diagnosis:")
        for row in violation.diagnosis.describe().splitlines():
            lines.append(f"  {row}")
        return "\n".join(lines)

    if observations is not None:
        profile = (
            violation.history.profile
            if violation.kind == NO_FULL_WITNESS
            else violation.history.project_pending(violation.pending_op).profile
        )
        candidates = (
            observations.full_candidates(profile)
            if violation.kind == NO_FULL_WITNESS
            else observations.stuck_candidates(profile)
        )
        lines.append("")
        if candidates:
            ids = _op_ids_for_profile(profile)
            lines.append(
                "Serial histories with matching per-thread operations "
                "(none is a witness):"
            )
            for candidate in candidates:
                lines.append(f"  <history>{history_line(candidate, ids)}</history>")
        else:
            lines.append(
                "No serial execution produced these per-thread operations "
                "and results at all."
            )
        from repro.core.explain import explain_violation

        lines.append("")
        lines.append("Diagnosis:")
        for row in explain_violation(violation, observations).describe().splitlines():
            lines.append(f"  {row}")
    return "\n".join(lines)


def render_check_result(result: CheckResult) -> str:
    """Render a full CheckResult (verdict, stats, violations)."""
    divergent = ""
    if result.phase2_divergent:
        divergent = f", {result.phase2_divergent} divergent"
    p1_divergent = ""
    if result.phase1.divergent:
        p1_divergent = f", {result.phase1.divergent} divergent executions"
    lines = [
        f"verdict: {result.verdict}",
        (
            f"phase 1: {result.phase1.executions} serial executions, "
            f"{result.phase1.histories} histories "
            f"({result.phase1.stuck_histories} stuck){p1_divergent}, "
            f"{result.phase1_seconds * 1000:.1f} ms"
        ),
        (
            f"phase 2: {result.phase2_executions} concurrent executions "
            f"({result.phase2_full} full, {result.phase2_stuck} stuck{divergent}), "
            f"{result.phase2_seconds * 1000:.1f} ms"
        ),
        (
            f"reduction: {result.reduction} — "
            f"{result.schedules_explored} schedules explored, "
            f"{result.equivalence_classes} equivalence classes, "
            f"{result.schedules_pruned} pruned"
        ),
    ]
    if result.exhausted_reason is not None:
        what = (
            "interrupted"
            if result.exhausted_reason == "interrupted"
            else f"budget exhausted ({result.exhausted_reason})"
        )
        lines.append(
            f"note: exploration incomplete — {what}; statistics are partial"
        )
    for violation in result.violations:
        lines.append("")
        lines.append(render_violation(violation, result.observations))
    return "\n".join(lines)


def check_result_to_dict(result: CheckResult) -> dict:
    """JSON-able summary of a :class:`CheckResult` (machine consumers)."""
    return {
        "verdict": result.verdict,
        "phase1": {
            "executions": result.phase1.executions,
            "histories": result.phase1.histories,
            "stuck_histories": result.phase1.stuck_histories,
            "divergent": result.phase1.divergent,
            "seconds": result.phase1_seconds,
            "complete": result.phase1.complete,
        },
        "phase2": {
            "executions": result.phase2_executions,
            "full": result.phase2_full,
            "stuck": result.phase2_stuck,
            "divergent": result.phase2_divergent,
            "seconds": result.phase2_seconds,
            "complete": result.phase2_complete,
        },
        "reduction": {
            "mode": result.reduction,
            "schedules_explored": result.schedules_explored,
            "equivalence_classes": result.equivalence_classes,
            "schedules_pruned": result.schedules_pruned,
        },
        "exhausted_reason": result.exhausted_reason,
        "violations": [
            {"kind": violation.kind, "description": violation.describe()}
            for violation in result.violations
        ],
    }


def render_generation_report(report) -> str:
    """Render a :class:`repro.generate.GenerationReport` for the terminal.

    The curve is summarized rather than dumped: its first and last
    points, plus where the first failure landed, tell the
    guided-vs-uniform story; the full curve travels in ``--json``.
    """
    lines = [
        f"verdict: {report.verdict}",
        (
            f"generation: {report.candidates} candidates "
            f"({report.skipped} planning dead-ends), "
            f"{report.executions} executions"
        ),
        (
            f"coverage: {report.classes} equivalence classes, "
            f"corpus of {report.corpus_size}"
        ),
    ]
    if report.curve:
        first_e, first_c = report.curve[0]
        last_e, last_c = report.curve[-1]
        lines.append(
            f"discovery: {first_c} classes after {first_e} executions → "
            f"{last_c} after {last_e}"
        )
    if report.failures:
        dup = (
            f" (+{report.duplicate_failures} duplicate hits)"
            if report.duplicate_failures
            else ""
        )
        lines.append(
            f"failures: {len(report.failures)} distinct root cause(s){dup}, "
            f"first after {report.first_failure_executions} executions"
        )
        for key in sorted(report.failures):
            failure = report.failures[key]
            lines.append(
                f"  [{failure['fingerprint']}] {failure['kind']} ×"
                f"{failure['count']} — {failure['matrix']}"
            )
            lines.append(f"    {failure['description']}")
    if report.converged:
        lines.append(
            "note: mutation ran dry — the reachable matrix space is "
            "exhausted for these bounds"
        )
    if report.stop_reason is not None:
        what = (
            "interrupted"
            if report.stop_reason == "interrupted"
            else f"budget exhausted ({report.stop_reason})"
        )
        lines.append(f"note: campaign incomplete — {what}")
    return "\n".join(lines)
