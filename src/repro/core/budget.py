"""Exploration budgets: first-class bounds on how much a check may explore.

The paper's algorithm is exhaustive; real campaigns are not.  Related work
on monitoring cost (P-compositionality, decrease-and-conquer monitoring)
treats the exploration budget as part of the problem statement, and so
does this module: a :class:`ExplorationBudget` expresses *how much* work a
check or campaign may spend — wall-clock, executions, decisions — and a
:class:`BudgetMeter` tracks consumption across phases (and across
checkpoint/resume cycles, which is why it is snapshotable).

When a budget trips, the check stops with an explicit ``EXHAUSTED``
verdict carrying partial statistics, never by silently truncating the
search: an exhausted PASS-so-far is a weaker claim than a completed PASS
and the result says so.  (The legacy ``max_*_executions`` knobs on
:class:`~repro.core.checker.CheckConfig` keep their historical
silent-truncation semantics; budgets are the loud, resumable variant.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.runtime import ExecutionOutcome

__all__ = ["BudgetMeter", "ExplorationBudget", "ExplorationControl"]


@dataclass(frozen=True)
class ExplorationBudget:
    """Bounds on one exploration (all optional, None = unbounded).

    ``deadline_seconds`` caps total wall-clock time, ``max_executions``
    the number of executions across both phases, ``max_decisions`` the
    total scheduling decisions (a machine-independent work measure).
    """

    deadline_seconds: float | None = None
    max_executions: int | None = None
    max_decisions: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be >= 0")
        if self.max_executions is not None and self.max_executions < 0:
            raise ValueError("max_executions must be >= 0")
        if self.max_decisions is not None and self.max_decisions < 0:
            raise ValueError("max_decisions must be >= 0")

    @property
    def unbounded(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_executions is None
            and self.max_decisions is None
        )

    def to_dict(self) -> dict:
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_executions": self.max_executions,
            "max_decisions": self.max_decisions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationBudget":
        return cls(
            deadline_seconds=data.get("deadline_seconds"),
            max_executions=data.get("max_executions"),
            max_decisions=data.get("max_decisions"),
        )


@dataclass
class BudgetMeter:
    """Accumulated consumption against one :class:`ExplorationBudget`.

    ``elapsed`` carries time spent in *previous* sessions (restored from a
    checkpoint) so a resumed run honours the original deadline; the live
    session's clock starts at :meth:`start`.
    """

    budget: ExplorationBudget
    elapsed: float = 0.0
    executions: int = 0
    decisions: int = 0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is None:
            self._started_at = time.monotonic()

    def spent_seconds(self) -> float:
        live = 0.0
        if self._started_at is not None:
            live = time.monotonic() - self._started_at
        return self.elapsed + live

    def note(self, outcome: ExecutionOutcome) -> None:
        """Record one finished execution."""
        self.executions += 1
        self.decisions += len(outcome.decisions)

    def exceeded(self) -> str | None:
        """The first tripped bound, or None while within budget."""
        budget = self.budget
        if (
            budget.deadline_seconds is not None
            and self.spent_seconds() >= budget.deadline_seconds
        ):
            return "deadline"
        if (
            budget.max_executions is not None
            and self.executions >= budget.max_executions
        ):
            return "executions"
        if (
            budget.max_decisions is not None
            and self.decisions >= budget.max_decisions
        ):
            return "decisions"
        return None

    def snapshot(self) -> dict:
        return {
            "budget": self.budget.to_dict(),
            "elapsed": self.spent_seconds(),
            "executions": self.executions,
            "decisions": self.decisions,
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "BudgetMeter":
        return cls(
            budget=ExplorationBudget.from_dict(data.get("budget", {})),
            elapsed=float(data.get("elapsed", 0.0)),
            executions=int(data.get("executions", 0)),
            decisions=int(data.get("decisions", 0)),
        )


@dataclass
class ExplorationControl:
    """The halt signal threaded through a check or campaign.

    Combines a budget meter with an external stop flag (set by the signal
    handlers for graceful shutdown).  Exploration loops call
    :meth:`halt_reason` between executions and wind down when it returns a
    reason; "interrupted" (the stop flag) takes precedence over budget
    exhaustion so an interrupt is reported as such even when the deadline
    lapsed while unwinding.
    """

    budget: ExplorationBudget | None = None
    meter: BudgetMeter | None = None
    stop: Callable[[], bool] | None = None

    def __post_init__(self) -> None:
        if self.meter is None and self.budget is not None:
            self.meter = BudgetMeter(self.budget)

    def start(self) -> None:
        if self.meter is not None:
            self.meter.start()

    def note(self, outcome: ExecutionOutcome) -> None:
        if self.meter is not None:
            self.meter.note(outcome)

    def halt_reason(self) -> str | None:
        if self.stop is not None and self.stop():
            return "interrupted"
        if self.meter is not None:
            return self.meter.exceeded()
        return None
