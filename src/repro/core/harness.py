"""Test harness: runs a finite test under the model checker (Section 4.1).

The harness turns a :class:`FiniteTest` into thread bodies for the
scheduler, records call/return events with argument and result values
(exactly the instrumentation the paper adds to CHESS), and rebuilds
:class:`History` objects from execution outcomes.

Layout of one execution:

* thread A runs the *init* sequence first (other threads gate on it), then
  its own column, then — after every column finished — the *final*
  sequence.  Init/final operations are recorded like ordinary operations.
* an operation's exceptions are captured and become its response, so that
  "sometimes raises" is observable nondeterminism rather than a crash.
* executions in which some operation can never complete come back as
  *stuck* histories (deadlock or livelock), feeding Definitions 2/3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.budget import ExplorationControl
from repro.core.events import Event, Invocation, Response
from repro.core.history import History
from repro.core.spec import ObservationSet
from repro.core.testcase import FiniteTest
from repro.runtime import (
    DFSStrategy,
    ExecutionAbort,
    ExecutionOutcome,
    Runtime,
    Scheduler,
    SchedulerError,
    SchedulingStrategy,
    WatchdogConfig,
    make_scheduler,
)

__all__ = ["HarnessError", "OpMark", "Phase1Stats", "SystemUnderTest", "TestHarness"]


class HarnessError(RuntimeError):
    """The harness itself failed (e.g. the test body raised unexpectedly)."""


@dataclass(frozen=True)
class OpMark:
    """Marker in the access stream delimiting one operation's accesses.

    The harness appends a ``begin`` mark right before dispatching an
    invocation and an ``end`` mark right after it returns; the analysis
    tools (conflict serializability in particular) use the marks to
    partition memory accesses into transactions.
    """

    thread: int
    op_index: int
    kind: str  #: "begin" or "end"


@dataclass(frozen=True)
class SystemUnderTest:
    """A factory producing fresh instances of the implementation X.

    ``factory`` receives the :class:`Runtime` through which the instance
    must allocate all shared state, and returns the object whose methods
    the invocations name.  Line-Up treats the object as a black box: only
    its method results and blocking behaviour are observed.
    """

    factory: Callable[[Runtime], Any]
    name: str = "subject"


@dataclass
class Phase1Stats:
    """Statistics of a serial-enumeration run (Table 2, phase 1 columns)."""

    executions: int = 0
    histories: int = 0  #: distinct serial histories recorded
    stuck_histories: int = 0
    divergent: int = 0  #: executions cut off by the watchdog
    #: why enumeration stopped early ("deadline", "executions",
    #: "decisions", "interrupted"), or None.
    stop_reason: str | None = None
    #: False when the enumeration did not exhaust the serial executions
    #: (budget trip, interrupt, or the legacy max_executions cap).
    complete: bool = True


class TestHarness:
    """Runs finite tests against one system under test.

    Owns (or borrows) a :class:`Scheduler`; reuse one harness across many
    tests — the underlying worker threads are pooled.  Use as a context
    manager, or call :meth:`close` when done (only needed for owned
    schedulers).
    """

    def __init__(
        self,
        subject: SystemUnderTest,
        scheduler: Scheduler | None = None,
        max_steps: int = 20_000,
        watchdog: WatchdogConfig | float | None = None,
        engine: str = "baton",
    ) -> None:
        self.subject = subject
        self._owns_scheduler = scheduler is None
        self.scheduler = (
            scheduler
            if scheduler is not None
            else make_scheduler(engine, max_steps=max_steps, watchdog=watchdog)
        )
        self.runtime = Runtime(self.scheduler)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._owns_scheduler:
            self.scheduler.shutdown()

    def __enter__(self) -> "TestHarness":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- body construction ---------------------------------------------------

    def _bodies(self, test: FiniteTest) -> list[Callable[[], None]]:
        """Fresh bodies (and a fresh subject instance) for one execution."""
        sched = self.scheduler
        obj = self.subject.factory(self.runtime)
        n = test.n_threads
        state = {"init_done": len(test.init) == 0, "columns_done": 0}

        def run_op(thread: int, op_index: int, invocation: Invocation) -> None:
            sched.schedule_point(boundary=True)
            sched.record_event(Event.call(thread, op_index, invocation))
            sched.record_access(OpMark(thread, op_index, "begin"))
            response = self._dispatch(obj, invocation)
            sched.record_access(OpMark(thread, op_index, "end"))
            sched.record_event(Event.ret(thread, op_index, response))

        def make_body(thread: int) -> Callable[[], None]:
            column = test.column(thread)

            def body() -> None:
                index = 0
                if thread == 0:
                    for invocation in test.init:
                        run_op(0, index, invocation)
                        index += 1
                    state["init_done"] = True
                elif test.init:
                    sched.block_until(lambda: state["init_done"], harness=True)
                for invocation in column:
                    run_op(thread, index, invocation)
                    index += 1
                state["columns_done"] += 1
                if thread == 0 and test.final:
                    sched.block_until(
                        lambda: state["columns_done"] == n, harness=True
                    )
                    for invocation in test.final:
                        run_op(0, index, invocation)
                        index += 1

            return body

        return [make_body(t) for t in range(n)]

    @staticmethod
    def _dispatch(obj: Any, invocation: Invocation) -> Response:
        if invocation.target is not None:
            # Multi-object test: the factory returned a mapping of named
            # objects (see repro.core.multi / the paper's Theorem 1).
            if not isinstance(obj, dict):
                raise HarnessError(
                    f"invocation targets object {invocation.target!r} but the "
                    "factory did not return a mapping of objects"
                )
            if invocation.target not in obj:
                raise HarnessError(f"no object named {invocation.target!r}")
            obj = obj[invocation.target]
        elif isinstance(obj, dict):
            raise HarnessError(
                "multi-object subject requires invocations with a target"
            )
        try:
            attr = getattr(obj, invocation.method)
        except AttributeError as exc:
            raise HarnessError(
                f"{type(obj).__name__} has no method {invocation.method!r}"
            ) from exc
        try:
            if callable(attr):
                return Response.of(attr(*invocation.args))
            if invocation.args:
                raise HarnessError(
                    f"{invocation.method} is a plain attribute; it takes no arguments"
                )
            return Response.of(attr)
        except (HarnessError, SchedulerError):
            # Runtime/harness misuse is a bug in the test setup or the
            # structure's use of the scheduler API, never a legitimate
            # response of the object under test.
            raise
        except ExecutionAbort:
            # Teardown unwind (stuck/divergent execution) — must keep
            # propagating or the abort handshake never completes.
            raise
        except BaseException as exc:  # the response *is* the exception
            # Includes KeyboardInterrupt/SystemExit raised *by the
            # subject*: a hostile operation must become an exceptional
            # response, not a crash of the checker.
            return Response.raised(exc)

    # -- running ----------------------------------------------------------------

    def history_from_outcome(
        self, outcome: ExecutionOutcome, test: FiniteTest
    ) -> History:
        if outcome.crashes:
            tid, exc = outcome.crashes[0]
            raise HarnessError(
                f"thread {tid} crashed outside an operation: {exc!r}"
            ) from exc
        # A divergent execution is classified as stuck: its pending
        # operation observably never responded, which is exactly what a
        # stuck history records (the watchdog merely bounded the wait).
        return History(
            outcome.events,
            test.n_threads,
            stuck=outcome.status != "complete",
            divergent=outcome.divergent,
        )

    def run_serial(
        self,
        test: FiniteTest,
        max_executions: int | None = None,
        *,
        observations: ObservationSet | None = None,
        stats: Phase1Stats | None = None,
        strategy: DFSStrategy | None = None,
        control: ExplorationControl | None = None,
        on_execution: Any = None,
    ) -> tuple[ObservationSet, Phase1Stats]:
        """Phase 1: enumerate all serial executions, synthesize the spec.

        Uses unbounded DFS (no preemption bounding — there are no
        preemptions in serial mode anyway), preserving the completeness
        guarantee of Theorem 5.

        *observations*/*stats*/*strategy* continue a previous partial run
        (checkpoint resume); *control* imposes an exploration budget and
        stop flag, recorded in ``stats.stop_reason`` when tripped;
        *on_execution* (called as ``on_execution(observations, stats,
        strategy)`` after each execution) is the checkpoint hook.
        """
        from repro.reduction.fingerprint import FingerprintSet, serial_fingerprint

        observations = (
            observations if observations is not None else ObservationSet(test.n_threads)
        )
        stats = stats if stats is not None else Phase1Stats()
        strategy = (
            strategy if strategy is not None else DFSStrategy(preemption_bound=None)
        )
        if control is not None:
            control.start()
        remaining = None
        if max_executions is not None:
            remaining = max(0, max_executions - stats.executions)
        # Cheap pre-filter: different serial schedules of the same test
        # frequently replay identical event streams; skip rebuilding and
        # re-inserting those histories.  This deduplicates *identical*
        # executions only — phase 1 must enumerate every distinct serial
        # history for the Theorem 5 completeness argument, so no
        # equivalence-class reduction is applied here.
        seen = FingerprintSet()
        for outcome in self.scheduler.explore(
            lambda: self._bodies(test),
            strategy,
            serial=True,
            max_executions=remaining,
        ):
            stats.executions += 1
            if control is not None:
                control.note(outcome)
            if outcome.divergent:
                stats.divergent += 1
            if seen.add(serial_fingerprint((outcome.status, *outcome.events))):
                history = self.history_from_outcome(outcome, test)
                serial = history.to_serial()
                if observations.add(serial):
                    stats.histories += 1
                    if serial.stuck:
                        stats.stuck_histories += 1
            if control is not None:
                reason = control.halt_reason()
                if reason is not None:
                    stats.stop_reason = reason
                    break
            if on_execution is not None:
                on_execution(observations, stats, strategy)
        if stats.stop_reason is not None or strategy.more():
            stats.complete = False
        return observations, stats

    def explore_concurrent(
        self,
        test: FiniteTest,
        strategy: SchedulingStrategy,
        max_executions: int | None = None,
    ) -> Iterator[tuple[History, ExecutionOutcome]]:
        """Phase 2: enumerate concurrent executions under *strategy*."""
        for outcome in self.scheduler.explore(
            lambda: self._bodies(test),
            strategy,
            serial=False,
            max_executions=max_executions,
        ):
            yield self.history_from_outcome(outcome, test), outcome
