"""Multi-object checking via the Theorem 1 reduction.

The paper restricts its formal attention to single-object histories and
notes (footnote to Definition 1) that "Theorem 1 [Herlihy & Wing] proves
that linearizability of multi-object histories can be soundly reduced to
linearizability of single-object histories".  This module implements
that reduction:

* a multi-object finite test tags each invocation with a ``target``
  object name, and the subject factory returns a mapping
  ``{name: object}``;
* one exploration runs the combined test; every (serial or concurrent)
  history is *projected* per object — keep the events of operations
  targeting that object, renumbering per-thread indices;
* phase 1 synthesizes one specification per object from the projected
  serial histories (each must be deterministic); phase 2 requires every
  projected concurrent history to be linearizable against its object's
  specification.

By Theorem 1, PASS here implies the combined histories are linearizable
with respect to the composition of the per-object specifications; a FAIL
names the object whose projection has no witness.

Note the locality caveat the theorem carries: the reduction is sound for
*linearizability* precisely because linearizability is a local property;
the determinism requirement is likewise checked per object.
"""

from __future__ import annotations

import time

from repro.core.checker import (
    NO_FULL_WITNESS,
    NO_STUCK_WITNESS,
    NONDETERMINISTIC,
    CheckConfig,
    CheckResult,
    Violation,
)
from repro.core.events import Event
from repro.core.harness import Phase1Stats, TestHarness
from repro.core.history import History
from repro.core.spec import ObservationSet
from repro.core.testcase import FiniteTest
from repro.core.witness import check_full_history, check_stuck_history

__all__ = ["MultiCheckResult", "check_multi", "project_object"]


def project_object(history: History, target: str | None) -> History:
    """The sub-history of operations on *target*, indices renumbered."""
    keep = {
        op.key for op in history.operations if op.invocation.target == target
    }
    counters: dict[tuple[int, int], int] = {}
    next_index: dict[int, int] = {}
    events: list[Event] = []
    for event in history.events:
        key = (event.thread, event.op_index)
        if key not in keep:
            continue
        if key not in counters:
            counters[key] = next_index.get(event.thread, 0)
            next_index[event.thread] = counters[key] + 1
        events.append(
            Event(
                kind=event.kind,
                thread=event.thread,
                op_index=counters[key],
                invocation=event.invocation,
                response=event.response,
            )
        )
    # The projection is stuck iff it still holds a pending operation.
    projected = History(events, history.n_threads, stuck=False)
    if history.stuck and projected.pending_operations:
        projected = History(events, history.n_threads, stuck=True)
    return projected


class MultiCheckResult(CheckResult):
    """CheckResult with per-object observation sets and failure target."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.per_object: dict[str | None, ObservationSet] = {}
        self.failed_object: str | None = None


def _targets_of(test: FiniteTest) -> list[str | None]:
    targets: list[str | None] = []
    for column in list(test.columns) + [test.init, test.final]:
        for invocation in column:
            if invocation.target not in targets:
                targets.append(invocation.target)
    return targets


def check_multi(
    harness: TestHarness,
    test: FiniteTest,
    config: CheckConfig | None = None,
) -> MultiCheckResult:
    """Two-phase check of a multi-object test via per-object projection."""
    cfg = config or CheckConfig()
    targets = _targets_of(test)

    # ---- Phase 1: one serial enumeration, projected per object.
    t0 = time.perf_counter()
    stats = Phase1Stats()
    per_object: dict[str | None, ObservationSet] = {
        target: ObservationSet(test.n_threads) for target in targets
    }
    from repro.runtime import DFSStrategy

    strategy = DFSStrategy(preemption_bound=None)
    for outcome in harness.scheduler.explore(
        lambda: harness._bodies(test),
        strategy,
        serial=True,
        max_executions=cfg.max_serial_executions,
    ):
        stats.executions += 1
        history = harness.history_from_outcome(outcome, test)
        for target in targets:
            projection = project_object(history, target)
            serial = projection.to_serial()
            if per_object[target].add(serial):
                stats.histories += 1
                if serial.stuck:
                    stats.stuck_histories += 1

    result = MultiCheckResult(
        verdict="PASS",
        test=test,
        phase1=stats,
        phase1_seconds=time.perf_counter() - t0,
    )
    result.per_object = per_object
    for target, observations in per_object.items():
        if not observations.is_deterministic:
            result.verdict = "FAIL"
            result.failed_object = target
            result.violations.append(
                Violation(
                    kind=NONDETERMINISTIC,
                    test=test,
                    nondeterminism=observations.nondeterminism,
                )
            )
            return result

    # ---- Phase 2: one concurrent exploration, checked per object.
    t1 = time.perf_counter()
    phase2 = cfg.make_phase2_strategy()
    for history, outcome in harness.explore_concurrent(
        test, phase2, max_executions=cfg.max_concurrent_executions
    ):
        result.phase2_executions += 1
        if history.stuck:
            result.phase2_stuck += 1
        else:
            result.phase2_full += 1
        violation: Violation | None = None
        for target in targets:
            projection = project_object(history, target)
            observations = per_object[target]
            if projection.stuck:
                stuck_check = check_stuck_history(projection, observations)
                if not stuck_check.ok:
                    violation = Violation(
                        kind=NO_STUCK_WITNESS,
                        test=test,
                        history=projection,
                        pending_op=stuck_check.failed,
                        decisions=tuple(outcome.decisions),
                    )
            elif check_full_history(projection, observations) is None:
                violation = Violation(
                    kind=NO_FULL_WITNESS,
                    test=test,
                    history=projection,
                    decisions=tuple(outcome.decisions),
                )
            if violation is not None:
                result.verdict = "FAIL"
                result.failed_object = target
                result.violations.append(violation)
                break
        if result.failed and cfg.stop_at_first_violation:
            break
    result.phase2_seconds = time.perf_counter() - t1
    return result
