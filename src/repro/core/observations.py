"""The observation-file format (paper Figure 7, Section 4.2).

Phase 1 records the synthesized specification in an XML file.  Histories
are grouped into ``<observation>`` sections; all histories in a section
exhibit the same operation sequences (and results) for each thread — our
:data:`Profile`.  The grouping has the two benefits the paper names: the
witness search only needs to scan one section, and the file stays humanly
navigable when the history sets grow.

Syntax, following the paper's example:

* ``<thread id="A">1 2</thread>`` — operation ids per thread, in program
  order; a pending (blocked) operation is marked with a ``B`` suffix.
* ``<op id="1" name="Add" args="200" />`` — one operation; completed ops
  carry ``result`` (or ``raised``) attributes.
* ``<history>1[ ]1 3[ ]3</history>`` — one interleaving; ``i[`` is the
  call and ``]i`` the return of operation i, and a stuck history ends
  with ``#``.

Values (arguments and results) are serialized with ``repr`` and parsed
back with ``ast.literal_eval``, so any literal-representable value round
trips.

Written files carry a format envelope on the root element —
``format="lineup-observations" version="1"`` — so a future format change
can be detected instead of misparsed.  Loading accepts envelope-less
legacy files (everything written before the envelope existed) and raises
:class:`ObservationFileError` on a foreign format name or an unsupported
version.
"""

from __future__ import annotations

import ast
from typing import Iterable
from xml.etree import ElementTree as ET

from repro.core.events import Invocation, Response
from repro.core.fileio import atomic_write_text
from repro.core.history import History, Profile, SerialHistory, SerialStep
from repro.core.spec import ObservationSet

__all__ = [
    "OBSERVATION_FORMAT",
    "OBSERVATION_VERSION",
    "ObservationFileError",
    "history_line",
    "load_observations",
    "observations_from_xml",
    "observations_to_xml",
    "save_observations",
]

#: Envelope identifying the file format (root-element attributes).
OBSERVATION_FORMAT = "lineup-observations"
OBSERVATION_VERSION = 1


class ObservationFileError(Exception):
    """An observation file could not be read or parsed.

    Raised with the offending path and underlying cause for anything from
    a missing file to truncated XML or a malformed value attribute, so
    callers (and users) see one clear error type instead of a grab bag of
    ``OSError`` / ``xml`` / ``ast`` internals.
    """


def _thread_label(thread: int) -> str:
    names = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    return names[thread] if thread < 26 else f"T{thread}"


def _thread_from_label(label: str) -> int:
    names = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    if len(label) == 1 and label in names:
        return names.index(label)
    if label.startswith("T"):
        return int(label[1:])
    raise ValueError(f"bad thread label {label!r}")


def _op_ids_for_profile(profile: Profile) -> dict[tuple[int, int], int]:
    """Assign 1-based op ids per the paper: thread A's ops first, then B's."""
    ids: dict[tuple[int, int], int] = {}
    next_id = 1
    for thread, row in enumerate(profile):
        for index in range(len(row)):
            ids[(thread, index)] = next_id
            next_id += 1
    return ids


def history_line(
    history: History | SerialHistory, ids: dict[tuple[int, int], int]
) -> str:
    """Render a history in the ``1[ ]1`` interleaving syntax of Fig. 7."""
    parts: list[str] = []
    if isinstance(history, SerialHistory):
        counters: dict[int, int] = {}
        for step in history.steps:
            index = counters.get(step.thread, 0)
            counters[step.thread] = index + 1
            op_id = ids[(step.thread, index)]
            parts.append(f"{op_id}[")
            if step.response is not None:
                parts.append(f"]{op_id}")
        if history.stuck:
            parts.append("#")
    else:
        for event in history.events:
            op_id = ids[(event.thread, event.op_index)]
            parts.append(f"{op_id}[" if event.is_call else f"]{op_id}")
        if history.stuck:
            parts.append("#")
    return " ".join(parts)


def _value_to_attr(value: object) -> str:
    return repr(value)


def _attr_to_value(text: str) -> object:
    return ast.literal_eval(text)


def observations_to_xml(observations: ObservationSet) -> str:
    """Serialize an observation set to the Fig. 7 XML format."""
    root = ET.Element("observationset")
    root.set("format", OBSERVATION_FORMAT)
    root.set("version", str(OBSERVATION_VERSION))
    root.set("threads", str(observations.n_threads))
    groups: dict[Profile, list[SerialHistory]] = {}
    for history in observations:
        groups.setdefault(
            history.profile_for(observations.n_threads), []
        ).append(history)
    for profile, histories in groups.items():
        section = ET.SubElement(root, "observation")
        ids = _op_ids_for_profile(profile)
        for thread, row in enumerate(profile):
            entries = []
            for index, (_invocation, response) in enumerate(row):
                suffix = "B" if response is None else ""
                entries.append(f"{ids[(thread, index)]}{suffix}")
            el = ET.SubElement(section, "thread")
            el.set("id", _thread_label(thread))
            el.text = " ".join(entries)
        for thread, row in enumerate(profile):
            for index, (invocation, response) in enumerate(row):
                op = ET.SubElement(section, "op")
                op.set("id", str(ids[(thread, index)]))
                op.set("name", invocation.method)
                if invocation.args:
                    op.set("args", _value_to_attr(invocation.args))
                if response is not None:
                    if response.kind == "raised":
                        op.set("raised", str(response.value))
                    else:
                        op.set("result", _value_to_attr(response.value))
        for history in histories:
            line = ET.SubElement(section, "history")
            line.text = history_line(history, ids)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _check_envelope(root: ET.Element) -> None:
    """Validate the format envelope; silently accept legacy files.

    Legacy files (written before the envelope existed) carry neither
    attribute and load fine; a file that *does* declare a format must
    declare ours at a version we read.
    """
    declared_format = root.get("format")
    declared_version = root.get("version")
    if declared_format is None and declared_version is None:
        return
    if declared_format != OBSERVATION_FORMAT:
        raise ObservationFileError(
            f"not an observation file: format is {declared_format!r}, "
            f"expected {OBSERVATION_FORMAT!r}"
        )
    try:
        version = int(declared_version or "")
    except ValueError:
        raise ObservationFileError(
            f"observation file has a malformed version {declared_version!r}"
        ) from None
    if version != OBSERVATION_VERSION:
        raise ObservationFileError(
            f"observation file version {version} is not supported "
            f"(this reader understands version {OBSERVATION_VERSION})"
        )


def observations_from_xml(text: str) -> ObservationSet:
    """Parse an observation file back into an :class:`ObservationSet`."""
    root = ET.fromstring(text)
    _check_envelope(root)
    observations = ObservationSet(int(root.get("threads", "0")))
    for section in root.findall("observation"):
        ops: dict[int, tuple[int, Invocation, Response | None]] = {}
        order: dict[int, list[int]] = {}
        for thread_el in section.findall("thread"):
            thread = _thread_from_label(thread_el.get("id", "A"))
            entries = (thread_el.text or "").split()
            order[thread] = [int(e.rstrip("B")) for e in entries]
        for op_el in section.findall("op"):
            op_id = int(op_el.get("id", "0"))
            args_text = op_el.get("args")
            invocation = Invocation(
                op_el.get("name", ""),
                tuple(_attr_to_value(args_text)) if args_text else (),
            )
            response: Response | None
            if op_el.get("raised") is not None:
                response = Response("raised", op_el.get("raised"))
            elif op_el.get("result") is not None:
                response = Response("ok", _attr_to_value(op_el.get("result", "None")))
            else:
                response = None
            thread = next(t for t, ids in order.items() if op_id in ids)
            ops[op_id] = (thread, invocation, response)
        for history_el in section.findall("history"):
            tokens = (history_el.text or "").split()
            steps: list[SerialStep] = []
            stuck = False
            for token in tokens:
                if token == "#":
                    stuck = True
                elif token.endswith("["):
                    op_id = int(token[:-1])
                    thread, invocation, response = ops[op_id]
                    steps.append(SerialStep(thread, invocation, response))
                # ``]i`` return markers carry no extra information for a
                # serial history; the call token already has the response.
            observations.add(SerialHistory(tuple(steps), stuck=stuck))
    return observations


def save_observations(observations: ObservationSet, path: str) -> None:
    """Write the observation file to *path* (atomically: temp + rename).

    A crash mid-write leaves the previous file intact; readers never see
    a truncated observation set.
    """
    atomic_write_text(path, observations_to_xml(observations))


def load_observations(path: str) -> ObservationSet:
    """Read an observation file from *path*.

    Raises :class:`ObservationFileError` when the file is missing,
    unreadable, truncated, or otherwise malformed.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ObservationFileError(
            f"cannot read observation file {path!r}: {exc}"
        ) from exc
    try:
        return observations_from_xml(text)
    except ObservationFileError:
        raise  # envelope mismatches already carry a precise message
    except (ET.ParseError, ValueError, SyntaxError, KeyError, StopIteration) as exc:
        raise ObservationFileError(
            f"corrupt observation file {path!r}: {exc}"
        ) from exc
