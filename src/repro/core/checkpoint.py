"""Checkpoint/resume for long-running checks and campaigns.

A checkpoint is a single JSON document written atomically (temp file +
fsync + rename, see :mod:`repro.core.fileio`), so a crash or SIGKILL at
any instant leaves either the previous checkpoint or the new one — never
a torn file.  Two kinds exist, discriminated by ``kind``:

* ``"check"`` — one ``Check(X, m)`` run: the finite test, the config, the
  current phase, the exploration strategy's frontier snapshot (for DFS
  the post-backtrack decision stack, which *is* the resume point), the
  accumulated observation set (as Fig. 7 XML), partial phase statistics,
  and the budget meter.
* ``"campaign"`` — a multi-class campaign: the class/version plan, the
  finished rows, per-test summaries of the class in progress, and the
  sampling parameters.  Campaign resume re-runs the interrupted *test*
  from scratch (tests are cheap relative to campaigns; execution-level
  granularity is reserved for single checks).

The exploration is deterministic given the strategy state — that is the
stateless-replay property the whole checker is built on — so a resumed
run explores exactly the executions the interrupted one would have.
"""

from __future__ import annotations

import ast
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.checker import CheckConfig
from repro.core.events import Invocation
from repro.core.fileio import atomic_write_text
from repro.core.harness import Phase1Stats
from repro.core.observations import observations_from_xml, observations_to_xml
from repro.core.spec import ObservationSet
from repro.core.testcase import FiniteTest
from repro.runtime import SchedulingStrategy, strategy_from_snapshot

__all__ = [
    "CheckResume",
    "CheckpointError",
    "Checkpointer",
    "build_check_state",
    "config_from_dict",
    "config_to_dict",
    "load_checkpoint",
    "parse_check_state",
    "save_checkpoint",
    "test_from_dict",
    "test_to_dict",
]

FORMAT = "lineup-checkpoint"
VERSION = 1


class CheckpointError(Exception):
    """A checkpoint file could not be read, parsed, or validated."""


# ----------------------------------------------------------------------
# Serialization helpers (everything JSON-able, values via repr round-trip)
# ----------------------------------------------------------------------


def invocation_to_dict(invocation: Invocation) -> dict:
    data: dict[str, Any] = {
        "method": invocation.method,
        "args": repr(tuple(invocation.args)),
    }
    if invocation.target is not None:
        data["target"] = invocation.target
    return data


def invocation_from_dict(data: dict) -> Invocation:
    args = ast.literal_eval(data["args"])
    return Invocation(data["method"], tuple(args), data.get("target"))


def test_to_dict(test: FiniteTest) -> dict:
    return {
        "columns": [
            [invocation_to_dict(op) for op in column] for column in test.columns
        ],
        "init": [invocation_to_dict(op) for op in test.init],
        "final": [invocation_to_dict(op) for op in test.final],
    }


def test_from_dict(data: dict) -> FiniteTest:
    return FiniteTest(
        columns=tuple(
            tuple(invocation_from_dict(op) for op in column)
            for column in data["columns"]
        ),
        init=tuple(invocation_from_dict(op) for op in data.get("init", ())),
        final=tuple(invocation_from_dict(op) for op in data.get("final", ())),
    )


def config_to_dict(config: CheckConfig) -> dict:
    return {
        "preemption_bound": config.preemption_bound,
        "phase2_strategy": config.phase2_strategy,
        "pct_depth": config.pct_depth,
        "phase2_executions": config.phase2_executions,
        "seed": config.seed,
        "max_serial_executions": config.max_serial_executions,
        "max_concurrent_executions": config.max_concurrent_executions,
        "max_steps": config.max_steps,
        "stop_at_first_violation": config.stop_at_first_violation,
        "budget": config.budget.to_dict() if config.budget is not None else None,
        "watchdog_seconds": config.watchdog_seconds,
        "backend": config.backend,
        "model": config.model,
        "monitor_engine": config.monitor_engine,
        "dump_traces": config.dump_traces,
        "reduction": config.reduction,
        "engine": config.engine,
    }


def config_from_dict(data: dict) -> CheckConfig:
    from repro.core.budget import ExplorationBudget

    budget = data.get("budget")
    return CheckConfig(
        preemption_bound=data.get("preemption_bound", 2),
        phase2_strategy=data.get("phase2_strategy", "dfs"),
        pct_depth=data.get("pct_depth", 3),
        phase2_executions=data.get("phase2_executions", 2000),
        seed=data.get("seed", 0),
        max_serial_executions=data.get("max_serial_executions"),
        max_concurrent_executions=data.get("max_concurrent_executions", 20_000),
        max_steps=data.get("max_steps", 20_000),
        stop_at_first_violation=data.get("stop_at_first_violation", True),
        budget=ExplorationBudget.from_dict(budget) if budget else None,
        watchdog_seconds=data.get("watchdog_seconds"),
        backend=data.get("backend", "observations"),
        model=data.get("model"),
        monitor_engine=data.get("monitor_engine", "auto"),
        dump_traces=data.get("dump_traces"),
        reduction=data.get("reduction", "none"),
        engine=data.get("engine", "baton"),
    )


def _phase1_to_dict(stats: Phase1Stats) -> dict:
    return {
        "executions": stats.executions,
        "histories": stats.histories,
        "stuck_histories": stats.stuck_histories,
        "divergent": stats.divergent,
    }


def _phase1_from_dict(data: dict) -> Phase1Stats:
    return Phase1Stats(
        executions=int(data.get("executions", 0)),
        histories=int(data.get("histories", 0)),
        stuck_histories=int(data.get("stuck_histories", 0)),
        divergent=int(data.get("divergent", 0)),
    )


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------


def save_checkpoint(path: str, state: dict) -> None:
    """Atomically write checkpoint *state* (plus format envelope) to *path*."""
    document = {"format": FORMAT, "version": VERSION, **state}
    atomic_write_text(path, json.dumps(document))


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint file; raise :class:`CheckpointError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"corrupt checkpoint {path!r}: not valid JSON ({exc})"
        ) from exc
    if not isinstance(document, dict) or document.get("format") != FORMAT:
        raise CheckpointError(f"{path!r} is not a Line-Up checkpoint file")
    if document.get("version") != VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {document.get('version')!r}; "
            f"this build reads version {VERSION}"
        )
    if document.get("kind") not in (
        "check", "campaign", "swarm", "shard-result", "generate",
    ):
        raise CheckpointError(
            f"checkpoint {path!r} has unknown kind {document.get('kind')!r}"
        )
    return document


class Checkpointer:
    """Rate-limited checkpoint writer threaded through exploration loops.

    ``tick`` is called after every execution (or test) with a *thunk* that
    builds the state dict; the state is only materialized and written when
    either ``every_executions`` ticks or ``every_seconds`` have elapsed
    since the last write, keeping the cost negligible on hot loops.
    ``extra`` is merged into every saved state (the CLI stashes the
    subject class/version there so ``lineup resume`` can rebuild it).
    """

    def __init__(
        self,
        path: str,
        every_executions: int = 250,
        every_seconds: float = 10.0,
        extra: dict | None = None,
    ) -> None:
        if every_executions < 1:
            raise ValueError("every_executions must be >= 1")
        if every_seconds < 0:
            raise ValueError("every_seconds must be >= 0")
        self.path = path
        self.every_executions = every_executions
        self.every_seconds = every_seconds
        self.extra = dict(extra or {})
        self.saves = 0
        self._ticks = 0
        self._last_save = time.monotonic()

    def tick(self, make_state: Callable[[], dict]) -> bool:
        """Maybe write a checkpoint; returns True when one was written."""
        self._ticks += 1
        due = (
            self._ticks >= self.every_executions
            or time.monotonic() - self._last_save >= self.every_seconds
        )
        if not due:
            return False
        self.save(make_state())
        return True

    def save(self, state: dict) -> None:
        """Unconditionally write a checkpoint (used for final flushes)."""
        merged = {**state, **self.extra}
        save_checkpoint(self.path, merged)
        self.saves += 1
        self._ticks = 0
        self._last_save = time.monotonic()


# ----------------------------------------------------------------------
# ``check`` state (kind="check")
# ----------------------------------------------------------------------


def build_check_state(
    *,
    test: FiniteTest,
    config: CheckConfig,
    phase: str,
    strategy: SchedulingStrategy | None,
    observations: ObservationSet | None,
    phase1: Phase1Stats,
    phase1_seconds: float,
    phase2: dict | None = None,
    budget_snapshot: dict | None = None,
) -> dict:
    """Assemble the JSON state for a single-check checkpoint."""
    snapshot = None
    if strategy is not None:
        snapshot = strategy.snapshot()  # type: ignore[attr-defined]
    return {
        "kind": "check",
        "phase": phase,
        "test": test_to_dict(test),
        "config": config_to_dict(config),
        "strategy": snapshot,
        "observations": (
            observations_to_xml(observations) if observations is not None else None
        ),
        "phase1": _phase1_to_dict(phase1),
        "phase1_seconds": phase1_seconds,
        "phase2": phase2
        or {"executions": 0, "full": 0, "stuck": 0, "divergent": 0, "seconds": 0.0},
        "budget": budget_snapshot,
    }


@dataclass
class CheckResume:
    """Parsed resume state handed to ``check_with_harness``."""

    phase: str  #: "phase1" or "phase2"
    strategy: SchedulingStrategy | None
    observations: ObservationSet | None
    phase1: Phase1Stats = field(default_factory=Phase1Stats)
    phase1_seconds: float = 0.0
    phase2: dict = field(default_factory=dict)
    budget_snapshot: dict | None = None


def parse_check_state(document: dict) -> tuple[FiniteTest, CheckConfig, CheckResume]:
    """Turn a loaded ``kind="check"`` checkpoint into resumable pieces."""
    try:
        test = test_from_dict(document["test"])
        config = config_from_dict(document.get("config", {}))
        phase = document["phase"]
        if phase not in ("phase1", "phase2"):
            raise ValueError(f"unknown phase {phase!r}")
        strategy = None
        if document.get("strategy") is not None:
            strategy = strategy_from_snapshot(document["strategy"])
        observations = None
        if document.get("observations") is not None:
            observations = observations_from_xml(document["observations"])
        resume = CheckResume(
            phase=phase,
            strategy=strategy,
            observations=observations,
            phase1=_phase1_from_dict(document.get("phase1", {})),
            phase1_seconds=float(document.get("phase1_seconds", 0.0)),
            phase2=dict(document.get("phase2", {})),
            budget_snapshot=document.get("budget"),
        )
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"malformed check checkpoint: {exc}") from exc
    return test, config, resume
