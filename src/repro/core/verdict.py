"""The verdict lattice: one precedence order, one merge helper.

Every layer of the tool reduces many per-unit verdicts to one — a
campaign over its tests, a swarm over its shard lineages, a sharded
watch over its cells, a live run over its monitor/service/budget
outcomes, a generation campaign over its candidates.  They all follow
the same rule: report the *worst* thing that happened, under one global
severity order.  This module is the single source of that order; the
historical per-module precedence tuples re-export it.

Severity rationale, worst first:

* ``FAIL`` — a violation is a proof (Theorem 5) and dominates everything.
* ``nondeterministic-verdict`` — re-runs of a FAIL disagreed (the
  flaky-verdict guard of :mod:`repro.exec.supervisor`); stronger evidence
  of trouble than a mere crash, weaker than a confirmed violation.
* ``CRASHED`` — the unit killed its worker (or the live service died);
  no verdict was obtained at all.
* ``LAGGED`` — an online watch fell behind its writer past the lag
  budget; the trace was seen but not fully checked in time.
* ``EXHAUSTED`` — the exploration budget tripped before completion.
* ``PASS`` — survives only when nothing worse happened.
"""

from __future__ import annotations

__all__ = ["VERDICT_PRECEDENCE", "worst_verdict"]

#: Global most-severe-first order over every verdict the tool produces.
VERDICT_PRECEDENCE = (
    "FAIL",
    "nondeterministic-verdict",
    "CRASHED",
    "LAGGED",
    "EXHAUSTED",
    "PASS",
)


def worst_verdict(verdicts) -> str:
    """The merged verdict implied by *verdicts* (most severe present).

    An empty pool merges to ``"PASS"`` (nothing bad was observed); a pool
    holding only verdicts outside the lattice surfaces its first element
    rather than silently normalizing — an unknown verdict is a bug worth
    seeing, not one worth hiding.
    """
    pool = list(verdicts)
    if not pool:
        return "PASS"
    for verdict in VERDICT_PRECEDENCE:
        if verdict in pool:
            return verdict
    return pool[0]
