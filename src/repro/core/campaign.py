"""Evaluation campaigns — the machinery behind Table 2 (Section 5).

The paper's methodology, per class and library version:

1. run ``RandomCheck`` on a uniform sample of 3×3 tests over the class's
   invocation alphabet (Table 1),
2. shrink failing tests to minimal dimension,
3. classify each root cause (bug / intentional nondeterminism /
   intentional nonlinearizability),
4. report phase-1 history counts and times, phase-2 pass/fail counts and
   times, and the preemption bound used.

:func:`run_class_campaign` performs steps 1 and 4 for one class/version;
:func:`campaign_row` adds the curated root-cause columns (step 2/3 were
manual in the paper; here the registry carries the classification and the
minimal witness tests, which :func:`verify_causes` re-validates).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.core.budget import ExplorationControl
from repro.core.checker import CheckConfig, CheckResult, check_with_harness
from repro.core.harness import SystemUnderTest, TestHarness
from repro.core.testcase import sample_tests
from repro.core.verdict import worst_verdict
from repro.runtime import Scheduler
from repro.structures.registry import ClassUnderTest

__all__ = [
    "CampaignRow",
    "TestSummary",
    "campaign_row",
    "campaign_verdict",
    "render_table2",
    "row_from_dict",
    "row_from_summaries",
    "row_to_dict",
    "run_class_campaign",
    "run_class_campaign_isolated",
    "summary_from_outcome",
    "verify_causes",
]


@dataclass(frozen=True)
class TestSummary:
    """The per-test facts a campaign row is computed from.

    Unlike a full :class:`CheckResult` this is JSON-able (no histories or
    observation sets), which is what makes campaign checkpoints small:
    finished tests are carried across a resume as summaries, and the row
    statistics of a resumed campaign equal those of an uninterrupted one.
    """

    verdict: str
    histories: int
    stuck_histories: int
    phase1_seconds: float
    total_seconds: float
    exhausted_reason: str | None = None
    #: check attempts consumed (> 1 when crash retries or flaky-verdict
    #: re-runs happened; see :mod:`repro.exec.supervisor`).
    attempts: int = 1
    #: path of the crash-report artifact for a quarantined (CRASHED) test.
    crash_report: str | None = None
    #: phase-2 reduction statistics (see :class:`CheckResult`).
    schedules_explored: int = 0
    equivalence_classes: int = 0
    schedules_pruned: int = 0

    @classmethod
    def from_result(cls, result: CheckResult) -> "TestSummary":
        return cls(
            verdict=result.verdict,
            histories=result.phase1.histories,
            stuck_histories=result.phase1.stuck_histories,
            phase1_seconds=result.phase1_seconds,
            total_seconds=result.phase1_seconds + result.phase2_seconds,
            exhausted_reason=result.exhausted_reason,
            schedules_explored=result.schedules_explored,
            equivalence_classes=result.equivalence_classes,
            schedules_pruned=result.schedules_pruned,
        )

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "histories": self.histories,
            "stuck_histories": self.stuck_histories,
            "phase1_seconds": self.phase1_seconds,
            "total_seconds": self.total_seconds,
            "exhausted_reason": self.exhausted_reason,
            "attempts": self.attempts,
            "crash_report": self.crash_report,
            "schedules_explored": self.schedules_explored,
            "equivalence_classes": self.equivalence_classes,
            "schedules_pruned": self.schedules_pruned,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TestSummary":
        return cls(
            verdict=data["verdict"],
            histories=int(data["histories"]),
            stuck_histories=int(data["stuck_histories"]),
            phase1_seconds=float(data["phase1_seconds"]),
            total_seconds=float(data["total_seconds"]),
            exhausted_reason=data.get("exhausted_reason"),
            attempts=int(data.get("attempts", 1)),
            crash_report=data.get("crash_report"),
            schedules_explored=int(data.get("schedules_explored", 0)),
            equivalence_classes=int(data.get("equivalence_classes", 0)),
            schedules_pruned=int(data.get("schedules_pruned", 0)),
        )


@dataclass
class CampaignRow:
    """One row of Table 2: a class/version's campaign summary."""

    class_name: str
    version: str
    methods: int
    tests_run: int = 0
    tests_passed: int = 0
    tests_failed: int = 0
    causes_found: tuple[str, ...] = ()
    min_dimensions: dict[str, tuple[int, int]] = field(default_factory=dict)
    histories_avg: float = 0.0
    histories_max: int = 0
    phase1_avg_s: float = 0.0
    phase1_max_s: float = 0.0
    fail_avg_s: float = 0.0
    pass_avg_s: float = 0.0
    preemption_bound: int | None = 2
    stuck_tests: int = 0  #: tests whose phase 1 saw stuck serial histories
    #: tests quarantined after repeatedly crashing their worker (verdict
    #: CRASHED; isolated campaigns only — see :mod:`repro.exec`).
    tests_crashed: int = 0
    #: tests whose FAIL/PASS re-runs disagreed (nondeterministic-verdict).
    tests_nondet: int = 0
    #: why the campaign stopped early ("deadline", "executions",
    #: "decisions", "interrupted"), or None when it ran to completion.
    stop_reason: str | None = None
    #: phase-2 reduction mode the campaign's checks used.
    reduction: str = "none"
    #: summed phase-2 reduction statistics over the row's tests.
    schedules_explored: int = 0
    equivalence_classes: int = 0
    schedules_pruned: int = 0


def row_to_dict(row: CampaignRow) -> dict:
    """JSON-able form of a campaign row (campaign checkpoints)."""
    data = dict(row.__dict__)
    data["causes_found"] = list(row.causes_found)
    data["min_dimensions"] = {
        tag: list(dim) for tag, dim in row.min_dimensions.items()
    }
    return data


def row_from_dict(data: dict) -> CampaignRow:
    data = dict(data)
    data["causes_found"] = tuple(data.get("causes_found", ()))
    data["min_dimensions"] = {
        tag: tuple(dim) for tag, dim in data.get("min_dimensions", {}).items()
    }
    return CampaignRow(**data)


def row_from_summaries(
    entry: ClassUnderTest,
    version: str,
    summaries: Sequence[TestSummary],
    config: CheckConfig,
) -> CampaignRow:
    """Aggregate per-test summaries into a Table 2 row."""
    row = CampaignRow(
        class_name=entry.name,
        version=version,
        methods=entry.method_count,
        preemption_bound=config.preemption_bound,
        reduction=config.reduction,
    )
    fail_times: list[float] = []
    pass_times: list[float] = []
    for summary in summaries:
        row.tests_run += 1
        row.histories_avg += summary.histories
        row.histories_max = max(row.histories_max, summary.histories)
        row.phase1_avg_s += summary.phase1_seconds
        row.phase1_max_s = max(row.phase1_max_s, summary.phase1_seconds)
        row.schedules_explored += summary.schedules_explored
        row.equivalence_classes += summary.equivalence_classes
        row.schedules_pruned += summary.schedules_pruned
        if summary.stuck_histories:
            row.stuck_tests += 1
        if summary.verdict == "FAIL":
            row.tests_failed += 1
            fail_times.append(summary.total_seconds)
        elif summary.verdict == "CRASHED":
            row.tests_crashed += 1
        elif summary.verdict == "nondeterministic-verdict":
            row.tests_nondet += 1
        else:
            row.tests_passed += 1
            pass_times.append(summary.total_seconds)
    if row.tests_run:
        row.histories_avg /= row.tests_run
        row.phase1_avg_s /= row.tests_run
    if fail_times:
        row.fail_avg_s = sum(fail_times) / len(fail_times)
    if pass_times:
        row.pass_avg_s = sum(pass_times) / len(pass_times)
    return row


def campaign_verdict(rows: "Sequence[CampaignRow]") -> str:
    """The campaign-level verdict implied by finished *rows*.

    Each row contributes the verdicts its tests produced (a failed test
    or a confirmed curated cause is a FAIL; quarantines and flaky
    re-runs surface as their own verdicts) and the shared lattice of
    :func:`repro.core.verdict.worst_verdict` merges them.  Only a FAIL
    maps to a failing exit code — a crashed or flaky test is reported,
    not treated as a proven violation.
    """
    verdicts: list[str] = []
    for row in rows:
        if row.tests_failed or row.causes_found:
            verdicts.append("FAIL")
        if row.tests_nondet:
            verdicts.append("nondeterministic-verdict")
        if row.tests_crashed:
            verdicts.append("CRASHED")
        if row.stop_reason is not None:
            verdicts.append("EXHAUSTED")
        if row.tests_passed:
            verdicts.append("PASS")
    return worst_verdict(verdicts)


def run_class_campaign(
    entry: ClassUnderTest,
    version: str,
    samples: int = 20,
    rows: int = 3,
    cols: int = 3,
    seed: int = 0,
    config: CheckConfig | None = None,
    scheduler: Scheduler | None = None,
    *,
    control: ExplorationControl | None = None,
    completed: Sequence[TestSummary] | None = None,
    on_test: Callable[[list[TestSummary]], None] | None = None,
) -> tuple[CampaignRow, list[CheckResult]]:
    """RandomCheck campaign for one class/version, with Table 2 stats.

    The test list is a deterministic function of (alphabet, rows, cols,
    samples, seed), so a resumed campaign (*completed* = summaries of
    already-finished tests, restored from a checkpoint) runs exactly the
    tests the interrupted one had left and aggregates to the same row.
    *on_test* is called with the summary list after every finished test
    (the campaign checkpoint hook); *control* imposes a campaign-wide
    budget — an EXHAUSTED test result is not summarized, so the resume
    re-runs that test from scratch.
    """
    cfg = config or CheckConfig()
    if control is None and cfg.budget is not None:
        control = ExplorationControl(budget=cfg.budget)
    subject = SystemUnderTest(entry.factory(version), f"{entry.name}({version})")
    tests = sample_tests(
        list(entry.invocations), rows, cols, samples, seed=seed, init=entry.init
    )
    summaries: list[TestSummary] = list(completed or ())
    results: list[CheckResult] = []
    stop_reason: str | None = None
    with TestHarness(
        subject,
        scheduler=scheduler,
        max_steps=cfg.max_steps,
        watchdog=cfg.watchdog_seconds,
        engine=cfg.engine,
    ) as harness:
        for test in list(tests)[len(summaries):]:
            if control is not None:
                reason = control.halt_reason()
                if reason is not None:
                    stop_reason = reason
                    break
            result = check_with_harness(harness, test, cfg, control=control)
            if result.exhausted:
                stop_reason = result.exhausted_reason
                break
            summaries.append(TestSummary.from_result(result))
            results.append(result)
            if on_test is not None:
                on_test(summaries)
    row = row_from_summaries(entry, version, summaries, cfg)
    row.stop_reason = stop_reason
    return row, results


def summary_from_outcome(outcome) -> TestSummary:
    """Convert a worker-pool :class:`~repro.exec.TaskOutcome` to a summary.

    Quarantined tests never produced statistics, so their summary is all
    zeros apart from the verdict and the crash-report pointer; completed
    tests reuse the worker's serialized summary with the *settled* verdict
    (which may differ from the decisive attempt's own — the flaky-verdict
    guard can settle on ``nondeterministic-verdict``).
    """
    attempts = max(1, len(outcome.verdicts) + len(outcome.crashes))
    if outcome.summary is None:
        return TestSummary(
            verdict=outcome.verdict,
            histories=0,
            stuck_histories=0,
            phase1_seconds=0.0,
            total_seconds=0.0,
            attempts=attempts,
            crash_report=outcome.crash_report,
        )
    summary = TestSummary.from_dict(outcome.summary)
    return replace(
        summary,
        verdict=outcome.verdict,
        attempts=attempts,
        crash_report=outcome.crash_report,
    )


def run_class_campaign_isolated(
    entry: ClassUnderTest,
    version: str,
    samples: int = 20,
    rows: int = 3,
    cols: int = 3,
    seed: int = 0,
    config: CheckConfig | None = None,
    *,
    pool,
    provider: str | None = None,
    control: ExplorationControl | None = None,
    completed: "dict[int, TestSummary] | None" = None,
    prior_retries: "dict[int, int] | None" = None,
    on_outcome: "Callable[[object, dict[int, int]], None] | None" = None,
) -> tuple[CampaignRow, dict[int, TestSummary]]:
    """The campaign of :func:`run_class_campaign`, fanned across a pool.

    Each test runs as one task in *pool* (a :class:`repro.exec.WorkerPool`)
    inside a sandboxed child process, so a test that kills its process is
    quarantined with a ``CRASHED`` verdict instead of ending the campaign.
    The test list is the same deterministic sample as the in-process
    campaign; *completed* maps test index → summary for tests finished
    before a resume (outcomes complete out of order, so resume state is
    keyed by index, not a prefix count), and *prior_retries* restores
    their crash-retry counters.  *on_outcome* is the checkpoint hook,
    called with each raw outcome and the pool's retry-counter map.

    Returns the aggregated row plus the per-index summary map.
    """
    from repro.core.checkpoint import config_to_dict, test_to_dict
    from repro.exec import TaskSpec

    cfg = config or CheckConfig()
    if control is None and cfg.budget is not None:
        control = ExplorationControl(budget=cfg.budget)
    tests = list(
        sample_tests(
            list(entry.invocations), rows, cols, samples, seed=seed,
            init=entry.init,
        )
    )
    summaries: dict[int, TestSummary] = dict(completed or {})
    config_data = config_to_dict(cfg)
    specs = [
        TaskSpec(
            index=index,
            class_name=entry.name,
            version=version,
            test=test_to_dict(test),
            config=config_data,
            provider=provider,
        )
        for index, test in enumerate(tests)
        if index not in summaries
    ]
    stop_reason: str | None = None
    if specs:
        outcomes, stop_reason = pool.run(
            specs,
            prior_retries=prior_retries,
            control=control,
            on_outcome=on_outcome,
        )
        for outcome in outcomes:
            summaries[outcome.index] = summary_from_outcome(outcome)
    row = row_from_summaries(
        entry,
        version,
        [summaries[index] for index in sorted(summaries)],
        cfg,
    )
    if stop_reason is None and len(summaries) < len(tests):
        stop_reason = "incomplete"  # pragma: no cover - defensive
    row.stop_reason = stop_reason
    return row, summaries


def verify_causes(
    entry: ClassUnderTest,
    version: str,
    config: CheckConfig | None = None,
    scheduler: Scheduler | None = None,
) -> tuple[tuple[str, ...], dict[str, tuple[int, int]]]:
    """Re-validate the curated minimal witness tests (Table 2 columns
    "root causes" and "minimal dimension")."""
    cfg = config or CheckConfig()
    found: list[str] = []
    dimensions: dict[str, tuple[int, int]] = {}
    subject = SystemUnderTest(entry.factory(version), f"{entry.name}({version})")
    with TestHarness(
        subject,
        scheduler=scheduler,
        max_steps=cfg.max_steps,
        watchdog=cfg.watchdog_seconds,
        engine=cfg.engine,
    ) as harness:
        for cause in entry.causes_for(version):
            if cause.witness_test is None:
                continue
            result = check_with_harness(harness, cause.witness_test, cfg)
            if result.failed:
                found.append(cause.tag)
                dimensions[cause.tag] = cause.witness_test.dimension
    return tuple(found), dimensions


def campaign_row(
    entry: ClassUnderTest,
    version: str,
    samples: int = 20,
    rows: int = 3,
    cols: int = 3,
    seed: int = 0,
    config: CheckConfig | None = None,
    scheduler: Scheduler | None = None,
    witness_config: CheckConfig | None = None,
) -> CampaignRow:
    """Full Table 2 row: random campaign plus curated cause validation.

    The random campaign honours *config* (typically sampled phase 2 for
    speed); the curated minimal witnesses are re-validated with
    *witness_config*, defaulting to the exhaustive PB-2 checker so the
    per-cause columns never depend on sampling luck.
    """
    row, _results = run_class_campaign(
        entry, version, samples, rows, cols, seed, config, scheduler
    )
    row.causes_found, row.min_dimensions = verify_causes(
        entry, version, witness_config or CheckConfig(), scheduler
    )
    return row


def render_table2(rows: list[CampaignRow]) -> str:
    """Format campaign rows the way the paper's Table 2 reads."""
    header = (
        f"{'Class':26s} {'ver':4s} {'causes':8s} {'dim':8s} "
        f"{'hist avg':>8s} {'hist max':>8s} {'p1 avg':>8s} "
        f"{'fail':>4s} {'pass':>4s} {'crash':>5s} "
        f"{'t-fail':>7s} {'t-pass':>7s} "
        f"{'sched':>7s} {'pruned':>7s} {'PB':>3s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        dims = ",".join(
            f"{r}x{c}" for r, c in sorted(set(row.min_dimensions.values()))
        )
        pb = "-" if row.preemption_bound is None else str(row.preemption_bound)
        lines.append(
            f"{row.class_name:26s} {row.version:4s} "
            f"{','.join(row.causes_found) or '-':8s} {dims or '-':8s} "
            f"{row.histories_avg:8.1f} {row.histories_max:8d} "
            f"{row.phase1_avg_s * 1000:7.1f}m "
            f"{row.tests_failed:4d} {row.tests_passed:4d} "
            f"{row.tests_crashed:5d} "
            f"{row.fail_avg_s * 1000:6.1f}m {row.pass_avg_s * 1000:6.1f}m "
            f"{row.schedules_explored:7d} {row.schedules_pruned:7d} {pb:>3s}"
        )
    return "\n".join(lines)
