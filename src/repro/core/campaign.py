"""Evaluation campaigns — the machinery behind Table 2 (Section 5).

The paper's methodology, per class and library version:

1. run ``RandomCheck`` on a uniform sample of 3×3 tests over the class's
   invocation alphabet (Table 1),
2. shrink failing tests to minimal dimension,
3. classify each root cause (bug / intentional nondeterminism /
   intentional nonlinearizability),
4. report phase-1 history counts and times, phase-2 pass/fail counts and
   times, and the preemption bound used.

:func:`run_class_campaign` performs steps 1 and 4 for one class/version;
:func:`campaign_row` adds the curated root-cause columns (step 2/3 were
manual in the paper; here the registry carries the classification and the
minimal witness tests, which :func:`verify_causes` re-validates).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.autocheck import random_check
from repro.core.checker import CheckConfig, CheckResult
from repro.core.harness import SystemUnderTest, TestHarness
from repro.core.checker import check_with_harness
from repro.runtime import Scheduler
from repro.structures.registry import ClassUnderTest

__all__ = ["CampaignRow", "campaign_row", "render_table2", "verify_causes"]


@dataclass
class CampaignRow:
    """One row of Table 2: a class/version's campaign summary."""

    class_name: str
    version: str
    methods: int
    tests_run: int = 0
    tests_passed: int = 0
    tests_failed: int = 0
    causes_found: tuple[str, ...] = ()
    min_dimensions: dict[str, tuple[int, int]] = field(default_factory=dict)
    histories_avg: float = 0.0
    histories_max: int = 0
    phase1_avg_s: float = 0.0
    phase1_max_s: float = 0.0
    fail_avg_s: float = 0.0
    pass_avg_s: float = 0.0
    preemption_bound: int | None = 2
    stuck_tests: int = 0  #: tests whose phase 1 saw stuck serial histories


def run_class_campaign(
    entry: ClassUnderTest,
    version: str,
    samples: int = 20,
    rows: int = 3,
    cols: int = 3,
    seed: int = 0,
    config: CheckConfig | None = None,
    scheduler: Scheduler | None = None,
) -> tuple[CampaignRow, list[CheckResult]]:
    """RandomCheck campaign for one class/version, with Table 2 stats."""
    cfg = config or CheckConfig()
    subject = SystemUnderTest(entry.factory(version), f"{entry.name}({version})")
    campaign = random_check(
        subject,
        entry.invocations,
        rows=rows,
        cols=cols,
        samples=samples,
        seed=seed,
        config=cfg,
        keep_results=True,
        init=entry.init,
        scheduler=scheduler,
    )
    row = CampaignRow(
        class_name=entry.name,
        version=version,
        methods=entry.method_count,
        preemption_bound=cfg.preemption_bound,
    )
    fail_times: list[float] = []
    pass_times: list[float] = []
    for result in campaign.results:
        row.tests_run += 1
        row.histories_avg += result.phase1.histories
        row.histories_max = max(row.histories_max, result.phase1.histories)
        row.phase1_avg_s += result.phase1_seconds
        row.phase1_max_s = max(row.phase1_max_s, result.phase1_seconds)
        if result.phase1.stuck_histories:
            row.stuck_tests += 1
        total = result.phase1_seconds + result.phase2_seconds
        if result.failed:
            row.tests_failed += 1
            fail_times.append(total)
        else:
            row.tests_passed += 1
            pass_times.append(total)
    if row.tests_run:
        row.histories_avg /= row.tests_run
        row.phase1_avg_s /= row.tests_run
    if fail_times:
        row.fail_avg_s = sum(fail_times) / len(fail_times)
    if pass_times:
        row.pass_avg_s = sum(pass_times) / len(pass_times)
    return row, campaign.results


def verify_causes(
    entry: ClassUnderTest,
    version: str,
    config: CheckConfig | None = None,
    scheduler: Scheduler | None = None,
) -> tuple[tuple[str, ...], dict[str, tuple[int, int]]]:
    """Re-validate the curated minimal witness tests (Table 2 columns
    "root causes" and "minimal dimension")."""
    cfg = config or CheckConfig()
    found: list[str] = []
    dimensions: dict[str, tuple[int, int]] = {}
    subject = SystemUnderTest(entry.factory(version), f"{entry.name}({version})")
    with TestHarness(subject, scheduler=scheduler, max_steps=cfg.max_steps) as harness:
        for cause in entry.causes_for(version):
            if cause.witness_test is None:
                continue
            result = check_with_harness(harness, cause.witness_test, cfg)
            if result.failed:
                found.append(cause.tag)
                dimensions[cause.tag] = cause.witness_test.dimension
    return tuple(found), dimensions


def campaign_row(
    entry: ClassUnderTest,
    version: str,
    samples: int = 20,
    rows: int = 3,
    cols: int = 3,
    seed: int = 0,
    config: CheckConfig | None = None,
    scheduler: Scheduler | None = None,
    witness_config: CheckConfig | None = None,
) -> CampaignRow:
    """Full Table 2 row: random campaign plus curated cause validation.

    The random campaign honours *config* (typically sampled phase 2 for
    speed); the curated minimal witnesses are re-validated with
    *witness_config*, defaulting to the exhaustive PB-2 checker so the
    per-cause columns never depend on sampling luck.
    """
    row, _results = run_class_campaign(
        entry, version, samples, rows, cols, seed, config, scheduler
    )
    row.causes_found, row.min_dimensions = verify_causes(
        entry, version, witness_config or CheckConfig(), scheduler
    )
    return row


def render_table2(rows: list[CampaignRow]) -> str:
    """Format campaign rows the way the paper's Table 2 reads."""
    header = (
        f"{'Class':26s} {'ver':4s} {'causes':8s} {'dim':8s} "
        f"{'hist avg':>8s} {'hist max':>8s} {'p1 avg':>8s} "
        f"{'fail':>4s} {'pass':>4s} {'t-fail':>7s} {'t-pass':>7s} {'PB':>3s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        dims = ",".join(
            f"{r}x{c}" for r, c in sorted(set(row.min_dimensions.values()))
        )
        pb = "-" if row.preemption_bound is None else str(row.preemption_bound)
        lines.append(
            f"{row.class_name:26s} {row.version:4s} "
            f"{','.join(row.causes_found) or '-':8s} {dims or '-':8s} "
            f"{row.histories_avg:8.1f} {row.histories_max:8d} "
            f"{row.phase1_avg_s * 1000:7.1f}m "
            f"{row.tests_failed:4d} {row.tests_passed:4d} "
            f"{row.fail_avg_s * 1000:6.1f}m {row.pass_avg_s * 1000:6.1f}m {pb:>3s}"
        )
    return "\n".join(lines)
