"""Crash-safe file writes for observation files and checkpoints.

A checker that can be killed at any moment (deadline, SIGTERM, OOM) must
never leave a half-written artifact where a complete one used to be: a
truncated checkpoint is worse than none.  ``atomic_write_text`` gives the
standard guarantee — readers see either the old contents or the new,
never a mixture — via a temp file in the same directory (same filesystem,
so the rename is atomic), an fsync, and ``os.replace``.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace the file at *path* with *text* (UTF-8)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
