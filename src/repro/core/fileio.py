"""Crash-safe file writes for observation files and checkpoints.

A checker that can be killed at any moment (deadline, SIGTERM, OOM) must
never leave a half-written artifact where a complete one used to be: a
truncated checkpoint is worse than none.  ``atomic_write_text`` gives the
standard guarantee — readers see either the old contents or the new,
never a mixture — via a temp file in the same directory (same filesystem,
so the rename is atomic), an fsync, ``os.replace``, and an fsync of the
containing directory (without which the *rename itself* may be lost on
power failure: the data blocks are durable but the directory entry still
points at the old file).
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_text"]


def _fsync_directory(directory: str) -> None:
    """Flush a directory's entries to disk, where the platform allows.

    Some platforms/filesystems refuse to open or fsync directories;
    failing the write for that would be worse than the (rare) lost-rename
    window, so errors are swallowed.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace the file at *path* with *text* (UTF-8)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
