"""Line-Up core: histories, specifications, and the two-phase checker.

The public workflow:

1. Wrap the implementation in a :class:`SystemUnderTest` (a factory that
   allocates all shared state through the provided
   :class:`repro.runtime.Runtime`).
2. Describe a finite test — a matrix of :class:`Invocation` per thread —
   or let :func:`random_check` / :func:`auto_check` generate them.
3. :func:`check` runs the two phases of Figure 5 and returns a
   :class:`CheckResult`; any FAIL proves the implementation is not
   linearizable with respect to *any* deterministic sequential
   specification (Theorem 5).
4. :func:`render_check_result` / :func:`render_violation` produce the
   paper-style reports; :mod:`repro.core.observations` reads and writes
   the Fig. 7 observation files.
"""

from repro.core.autocheck import (
    CampaignResult,
    auto_check,
    minimize_failing_test,
    random_check,
)
from repro.core.budget import BudgetMeter, ExplorationBudget, ExplorationControl
from repro.core.checkpoint import (
    CheckpointError,
    Checkpointer,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.checker import (
    VERDICT_PRECEDENCE,
    CheckConfig,
    CheckResult,
    Violation,
    check,
    check_against_observations,
    check_with_harness,
    worst_verdict,
)
from repro.core.events import Event, Invocation, Operation, Response
from repro.core.harness import HarnessError, SystemUnderTest, TestHarness
from repro.core.history import History, Profile, SerialHistory, SerialStep
from repro.core.fileio import atomic_write_text
from repro.core.observations import (
    ObservationFileError,
    load_observations,
    observations_from_xml,
    observations_to_xml,
    save_observations,
)
from repro.core.relaxed import (
    DOTNET_POLICIES,
    InterferencePolicy,
    InterferenceRule,
    check_relaxed,
)
from repro.core.report import render_check_result, render_violation
from repro.core.spec import NondeterminismWitness, ObservationSet
from repro.core.testcase import FiniteTest, enumerate_tests, sample_tests
from repro.core.timeline import render_timeline
from repro.core.witness import (
    brute_force_full_witness,
    check_full_history,
    check_stuck_history,
    is_witness_for,
)

__all__ = [
    "BudgetMeter",
    "CampaignResult",
    "CheckConfig",
    "CheckResult",
    "CheckpointError",
    "Checkpointer",
    "DOTNET_POLICIES",
    "ExplorationBudget",
    "ExplorationControl",
    "Event",
    "FiniteTest",
    "HarnessError",
    "History",
    "InterferencePolicy",
    "InterferenceRule",
    "Invocation",
    "NondeterminismWitness",
    "ObservationFileError",
    "ObservationSet",
    "Operation",
    "Profile",
    "Response",
    "SerialHistory",
    "SerialStep",
    "SystemUnderTest",
    "TestHarness",
    "VERDICT_PRECEDENCE",
    "Violation",
    "atomic_write_text",
    "auto_check",
    "brute_force_full_witness",
    "check",
    "check_against_observations",
    "check_full_history",
    "check_relaxed",
    "check_stuck_history",
    "check_with_harness",
    "enumerate_tests",
    "is_witness_for",
    "load_checkpoint",
    "load_observations",
    "minimize_failing_test",
    "observations_from_xml",
    "observations_to_xml",
    "random_check",
    "render_check_result",
    "render_timeline",
    "render_violation",
    "sample_tests",
    "save_checkpoint",
    "save_observations",
    "worst_verdict",
]
