"""Worker-side entry point for the ``"stream"`` pool task kind.

One task = one shard of a sharded watch: the payload (built by
:meth:`repro.stream.watch.WatchConfig.to_payload`) names the trace file,
the model, and this shard's index; the worker runs the ordinary
:func:`~repro.stream.watch.watch_trace` loop with per-cell shard
filtering and ships the :class:`~repro.stream.watch.WatchResult` back as
the task summary.  The supervisor's crash machinery needs nothing
special: a shard that dies mid-watch is retried from offset 0 — the
trace is a file, so re-reading it reproduces the shard's entire input.
"""

from __future__ import annotations

from repro.monitor.models import get_model
from repro.stream.watch import WatchConfig, watch_trace

__all__ = ["run_stream_task"]


def run_stream_task(spec: dict) -> dict:
    """Run one shard of a watch inside a pool worker."""
    payload = spec.get("payload") or {}
    model = get_model(payload["model"])
    config = WatchConfig.from_payload(payload)
    result = watch_trace(payload["path"], model, config)
    summary = result.to_dict()
    summary["shard"] = config.shard_index
    return {"verdict": result.verdict, "summary": summary}
