"""The watch orchestrator: follow a trace, keep a verdict, stay honest.

:func:`watch_trace` is the single-process loop behind ``lineup watch``:
poll the :class:`~repro.stream.tail.TraceTailer`, feed every complete
line to the :class:`~repro.stream.engine.StreamChecker`, emit stats, and
decide when to stop:

* **FAIL** — the moment a return event loses linearizability (or a v1
  record fails offline); online failure is final, no more reading.
* **drained** — the v2 end marker (or, without ``follow``, the current
  end of file) was reached with everything consumed.
* **idle timeout** — in follow mode, no new bytes for ``idle_timeout``
  seconds: the writer is gone (crashed mid-stream if the tail is torn);
  return the verdict over what was seen, marked unfinalized.
* **LAGGED** — the checker could not drain the file for ``lag_budget``
  consecutive seconds.  An online monitor that silently falls behind is
  indistinguishable from one that works, so exceeding the budget is a
  loud verdict, not a warning.

Rotation and truncation (the tailer's exceptions) restart checking from
offset 0 of the current file; a :class:`~repro.stream.engine.PartitionUnsound`
operation restarts from 0 with partitioning off.  Both are possible
precisely because the trace is a file that can be re-read.

:func:`watch_sharded` is the multi-process coordinator: one ``"stream"``
task per shard on the :class:`~repro.exec.supervisor.WorkerPool` (each
worker tails the same file, owning the partition cells whose stable hash
lands on its index), with verdicts merged under the precedence
``FAIL > CRASHED > LAGGED > EXHAUSTED > PASS``.  A shard that discovers
a global operation reports ``UNSOUND-PARTITION`` and the coordinator
falls back to one unpartitioned in-process watch of the whole file.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

from repro.core.verdict import VERDICT_PRECEDENCE as _VERDICT_PRECEDENCE
from repro.core.verdict import worst_verdict
from repro.monitor.models import SequentialModel, get_model
from repro.monitor.trace import TraceError
from repro.stream.engine import PartitionUnsound, StreamChecker
from repro.stream.stats import StatsEmitter, maxrss_kb
from repro.stream.tail import TraceRotated, TraceTailer, TraceTruncated

__all__ = [
    "UNSOUND_PARTITION",
    "VERDICT_PRECEDENCE",
    "WatchConfig",
    "WatchResult",
    "merge_verdicts",
    "watch_sharded",
    "watch_trace",
]

#: Shard-internal verdict: a global op made per-key sharding unsound.
UNSOUND_PARTITION = "UNSOUND-PARTITION"

#: Most-severe-first merge order for shard verdicts — the global lattice
#: of :mod:`repro.core.verdict` (shards never produce the verdicts the
#: extra entries name, so the merge is unchanged).
VERDICT_PRECEDENCE = _VERDICT_PRECEDENCE


def merge_verdicts(verdicts) -> str:
    """The most severe verdict present, under :data:`VERDICT_PRECEDENCE`."""
    return worst_verdict(verdicts)


@dataclass(frozen=True)
class WatchConfig:
    """Knobs of one watch session (single-process or one shard of many)."""

    follow: bool = False  #: keep polling for growth vs. read-once
    #: None = partition automatically when the model supports it.
    partition: bool | None = None
    shards: int = 1
    shard_index: int = 0
    lag_budget: float | None = None  #: max seconds of sustained backlog
    idle_timeout: float | None = None  #: follow mode: give up after quiet
    poll_interval: float = 0.05
    max_configurations: int | None = 1_000_000
    monitor_engine: str = "auto"  #: v1 records: offline engine choice
    stats_out: str | None = None  #: JSONL stats path (None = no stats)
    stats_interval: float = 1.0
    start_offset: int = 0

    def to_payload(self, path: str, model: str) -> dict:
        """The JSON-able form shipped to a ``"stream"`` pool worker."""
        return {
            "path": path,
            "model": model,
            "follow": self.follow,
            "partition": self.partition,
            "shards": self.shards,
            "shard_index": self.shard_index,
            "lag_budget": self.lag_budget,
            "idle_timeout": self.idle_timeout,
            "poll_interval": self.poll_interval,
            "max_configurations": self.max_configurations,
            "monitor_engine": self.monitor_engine,
            "stats_out": self.stats_out,
            "stats_interval": self.stats_interval,
            "start_offset": self.start_offset,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WatchConfig":
        kwargs = {
            name: payload[name]
            for name in (
                "follow",
                "partition",
                "shards",
                "shard_index",
                "lag_budget",
                "idle_timeout",
                "poll_interval",
                "max_configurations",
                "monitor_engine",
                "stats_out",
                "stats_interval",
                "start_offset",
            )
            if name in payload
        }
        return cls(**kwargs)


@dataclass
class WatchResult:
    """What one watch session concluded and what it saw along the way."""

    verdict: str  #: PASS/FAIL/EXHAUSTED/LAGGED (or UNSOUND-PARTITION)
    outcome: str | None  #: the v2 end marker's outcome, when reached
    finalized: bool  #: the end marker was seen and the file drained
    torn: bool  #: the final line was torn when the session ended
    restarts: int  #: rotation/truncation/unsound-partition restarts
    lag_exceeded: bool
    partitioned: bool
    counterexample: str | None
    stats: dict = field(default_factory=dict)
    elapsed: float = 0.0
    events_per_sec: float = 0.0
    shard_results: list = field(default_factory=list)  #: coordinator only

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "outcome": self.outcome,
            "finalized": self.finalized,
            "torn": self.torn,
            "restarts": self.restarts,
            "lag_exceeded": self.lag_exceeded,
            "partitioned": self.partitioned,
            "counterexample": self.counterexample,
            "stats": self.stats,
            "elapsed": self.elapsed,
            "events_per_sec": self.events_per_sec,
            "shard_results": list(self.shard_results),
        }


def watch_trace(
    path: str,
    model: SequentialModel,
    config: WatchConfig | None = None,
) -> WatchResult:
    """Watch one trace file in-process until a stopping condition."""
    config = config or WatchConfig()
    partition = (
        model.partitionable if config.partition is None else config.partition
    )
    if config.shards > 1 and not partition:
        raise ValueError("sharded watching requires a partitionable model")
    if not config.follow and not os.path.exists(path):
        raise TraceError(f"no such trace file: {path!r}")

    def fresh(partition_now: bool, offset: int = 0) -> tuple:
        checker = StreamChecker(
            model,
            partition=partition_now,
            shards=config.shards,
            shard_index=config.shard_index,
            max_configurations=config.max_configurations,
            monitor_engine=config.monitor_engine,
        )
        return checker, TraceTailer(path, offset)

    checker, tailer = fresh(partition, config.start_offset)
    emitter = StatsEmitter(
        config.stats_out,
        interval=config.stats_interval,
        shard_index=config.shard_index,
    )
    started = time.monotonic()
    last_progress = started
    lag_since: float | None = None
    lag_exceeded = False
    restarts = 0
    failed = False

    try:
        while True:
            try:
                segments = tailer.poll()
            except (TraceRotated, TraceTruncated):
                # The file is no longer the one we consumed: start over on
                # whatever the path names now.
                restarts += 1
                checker, tailer = fresh(partition)
                last_progress = time.monotonic()
                continue
            try:
                for segment in segments:
                    if not checker.feed(segment.obj):
                        failed = True
                        break
            except PartitionUnsound:
                if config.shards > 1:
                    # This shard sees only part of the stream, so it cannot
                    # recheck the whole file; the coordinator must.
                    return _snapshot(
                        UNSOUND_PARTITION, checker, tailer, restarts,
                        lag_exceeded, partition, started,
                    )
                restarts += 1
                partition = False
                checker, tailer = fresh(False)
                last_progress = time.monotonic()
                continue
            now = time.monotonic()
            if segments:
                last_progress = now
            if failed:
                break
            backlog = tailer.backlog()
            emitter.maybe_emit(checker, backlog)
            if backlog == 0:
                lag_since = None
                if checker.finalized:
                    break
                if not config.follow:
                    break
            else:
                # The budget clock runs while any backlog persists and only
                # a fully drained file resets it: consuming batches while
                # the writer stays ahead is still falling behind.
                if lag_since is None:
                    lag_since = now
                elif (
                    config.lag_budget is not None
                    and now - lag_since > config.lag_budget
                ):
                    lag_exceeded = True
                    break
                if not config.follow and not segments:
                    break  # only a torn tail remains and nobody will mend it
            if not segments:
                if (
                    config.follow
                    and config.idle_timeout is not None
                    and now - last_progress > config.idle_timeout
                ):
                    if not tailer.exists:
                        # A PASS over zero events of a file that never
                        # appeared would bless a typo'd path.
                        raise TraceError(
                            f"no such trace file: {path!r} (gave up after "
                            f"{config.idle_timeout}s waiting for it)"
                        )
                    break
                time.sleep(config.poll_interval)
    finally:
        emitter.emit(checker, tailer.backlog())
        emitter.close()

    verdict = checker.verdict
    if lag_exceeded and verdict == "PASS":
        verdict = "LAGGED"
    return _snapshot(
        verdict, checker, tailer, restarts, lag_exceeded, partition, started
    )


def _snapshot(
    verdict: str,
    checker: StreamChecker,
    tailer: TraceTailer,
    restarts: int,
    lag_exceeded: bool,
    partitioned: bool,
    started: float,
) -> WatchResult:
    elapsed = max(time.monotonic() - started, 1e-9)
    stats = checker.stats()
    stats["maxrss_kb"] = maxrss_kb()
    return WatchResult(
        verdict=verdict,
        outcome=checker.outcome,
        finalized=checker.finalized and tailer.backlog() == 0,
        torn=tailer.torn,
        restarts=restarts,
        lag_exceeded=lag_exceeded,
        partitioned=partitioned,
        counterexample=checker.counterexample_text(),
        stats=stats,
        elapsed=elapsed,
        events_per_sec=checker.counters.events / elapsed,
    )


def watch_sharded(
    path: str,
    model_name: str,
    config: WatchConfig,
    *,
    workers: int | None = None,
    pool_config=None,
) -> WatchResult:
    """Fan one watch across ``config.shards`` pool workers and merge.

    Every worker tails the same trace file and checks only its own
    partition cells, so independent keys check on independent processes;
    the merge is sound by P-compositionality.  Worker crashes surface as
    a ``CRASHED`` shard verdict through the pool's quarantine machinery
    rather than a hung watch.
    """
    from repro.exec.supervisor import PoolConfig, TaskSpec, WorkerPool

    if config.shards < 2:
        raise ValueError("watch_sharded needs shards >= 2")
    get_model(model_name)  # fail fast on unknown models, before spawning
    tasks = []
    for index in range(config.shards):
        shard_config = replace(
            config,
            shard_index=index,
            # Give each shard its own stats stream; interleaved writers
            # would tear each other's lines.
            stats_out=(
                f"{config.stats_out}.shard{index}" if config.stats_out else None
            ),
        )
        tasks.append(
            TaskSpec(
                index=index,
                class_name=model_name,
                version="stream",
                test={},
                kind="stream",
                payload=shard_config.to_payload(path, model_name),
            )
        )
    pool_config = pool_config or PoolConfig(
        workers=workers or min(config.shards, max(os.cpu_count() or 2, 2))
    )
    started = time.monotonic()
    with WorkerPool(pool_config) as pool:
        outcomes, _stop = pool.run(tasks)
    shard_results = []
    for outcome in outcomes:
        summary = outcome.summary or {}
        if outcome.verdict == "CRASHED" or "verdict" not in summary:
            summary = {**summary, "verdict": "CRASHED", "shard": outcome.index}
        shard_results.append(summary)
    if any(r.get("verdict") == UNSOUND_PARTITION for r in shard_results):
        # A global operation: per-key sharding is unsound for this stream.
        # Re-watch the whole file unpartitioned in this process.
        fallback = watch_trace(
            path,
            get_model(model_name),
            replace(config, partition=False, shards=1, shard_index=0),
        )
        fallback.restarts += 1
        fallback.shard_results = shard_results
        return fallback
    verdicts = [r.get("verdict", "CRASHED") for r in shard_results]
    merged = merge_verdicts(verdicts)
    failing = next(
        (r for r in shard_results if r.get("verdict") == merged), {}
    )
    elapsed = max(time.monotonic() - started, 1e-9)
    totals: dict = {"shards": len(shard_results)}
    for key in ("events", "calls", "returns", "skipped", "retired", "cells"):
        totals[key] = sum(r.get("stats", {}).get(key, 0) for r in shard_results)
    for key in ("max_frontier", "max_retirement_lag", "maxrss_kb"):
        totals[key] = max(
            (r.get("stats", {}).get(key, 0) for r in shard_results), default=0
        )
    return WatchResult(
        verdict=merged,
        outcome=next(
            (r.get("outcome") for r in shard_results if r.get("outcome")), None
        ),
        finalized=all(r.get("finalized", False) for r in shard_results),
        torn=any(r.get("torn", False) for r in shard_results),
        restarts=sum(r.get("restarts", 0) for r in shard_results),
        lag_exceeded=any(r.get("lag_exceeded", False) for r in shard_results),
        partitioned=True,
        counterexample=failing.get("counterexample"),
        stats=totals,
        elapsed=elapsed,
        events_per_sec=totals["events"] / elapsed,
        shard_results=shard_results,
    )
