"""The streaming check engine: trace lines in, online verdict out.

:class:`StreamChecker` consumes the parsed JSONL lines of one trace (in
file order, as :mod:`repro.stream.tail` delivers them) and maintains a
monitoring verdict *while the trace grows*:

* **v2 live traces** (event per line) are fed event-by-event into
  :class:`~repro.monitor.incremental.IncrementalChecker` instances — one
  per partition cell when per-key sharding is on, one for the whole
  stream otherwise.  A FAIL is known at the exact return event that
  loses linearizability; memory is bounded by the concurrency window
  (see the retirement argument in :mod:`repro.monitor.incremental`).
* **v1 history traces** (complete history per line) are checked one
  record at a time with the offline
  :func:`~repro.monitor.dispatch.monitor_history` — each line is already
  a complete history, so "streaming" means verdict-per-line, including
  the blocking justification for stuck histories.

Sharding model (P-compositionality, reusing
:meth:`~repro.monitor.models.SequentialModel.partition_key`): when
``partition`` is on, every operation is routed to its cell and cells are
checked independently — sound because for partitionable models a history
is linearizable iff each per-key projection is.  With ``shards > 1``
each engine instance additionally *owns* only the cells whose stable
hash lands on ``shard_index`` and skips the rest, so independent keys
check on independent worker processes.  An operation whose
``partition_key`` is ``None`` (a global ``Count``/``Clear``/...) makes
partitioning unsound mid-stream; :class:`PartitionUnsound` is raised and
the caller restarts from offset 0 with partitioning off — possible
precisely because the trace is a file, not an ephemeral socket.

Stream well-formedness (duplicate calls, returns without calls, events
after the end marker — the shapes two colliding writers produce) raises
:class:`~repro.monitor.trace.TraceError`, mirroring the strict offline
loader: a malformed stream never blends into a verdict.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Hashable

from repro.monitor.dispatch import monitor_history
from repro.monitor.incremental import IncrementalChecker, OnlineCounterexample
from repro.monitor.models import SequentialModel
from repro.monitor.trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TRACE_VERSION_LIVE,
    TraceError,
    _event_from_obj,
    record_to_history,
)
from repro.monitor.wgl import MonitorLimitError

__all__ = ["PartitionUnsound", "StreamChecker", "stable_shard"]

#: Sentinel cell for operations owned by another shard.
_FOREIGN = object()


class PartitionUnsound(Exception):
    """A global operation arrived while per-key partitioning was on."""

    def __init__(self, invocation) -> None:
        super().__init__(
            f"operation {invocation} has no partition key; per-key "
            "sharding is unsound for this stream — restart unpartitioned"
        )
        self.invocation = invocation


def stable_shard(cell: Hashable, shards: int) -> int:
    """Deterministic shard index for *cell*, stable across processes.

    ``hash()`` is salted per process for strings, so shard routing uses
    a CRC over the cell's ``repr`` — cells are invocation arguments that
    already round-trip through ``repr`` in the trace format.
    """
    return zlib.crc32(repr(cell).encode("utf-8")) % shards


@dataclass
class StreamCounters:
    """Ingest-side counters of one :class:`StreamChecker`."""

    events: int = 0  #: trace lines consumed (header and end included)
    calls: int = 0
    returns: int = 0
    indeterminate: int = 0
    skipped: int = 0  #: events owned by other shards
    histories: int = 0  #: v1 records checked
    exhausted_cells: int = 0
    cells: int = 0  #: partition cells seen by this shard

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class StreamChecker:
    """Feed one trace's lines in order; read the live verdict anytime."""

    def __init__(
        self,
        model: SequentialModel,
        *,
        partition: bool = False,
        shards: int = 1,
        shard_index: int = 0,
        max_configurations: int | None = None,
        monitor_engine: str = "auto",
    ) -> None:
        if partition and not model.partitionable:
            raise ValueError(
                f"model {model.name!r} is not partitionable; "
                "run with partition=False"
            )
        if not 0 <= shard_index < shards:
            raise ValueError("shard_index must be within [0, shards)")
        if shards > 1 and not partition:
            raise ValueError("sharding requires partitioning")
        self.model = model
        self.partition = partition
        self.shards = shards
        self.shard_index = shard_index
        self.max_configurations = max_configurations
        self.monitor_engine = monitor_engine
        self.counters = StreamCounters()
        self.version: int | None = None  #: None until the header arrived
        self.n_threads = 0  #: v1 header field
        self.outcome: str | None = None  #: v2 end-marker outcome
        self.failed: OnlineCounterexample | None = None
        self.failed_history: object | None = None  #: v1 FAIL: the History
        self.exhausted = False
        self._cells: dict[Hashable, IncrementalChecker] = {}
        self._dead_cells: set[Hashable] = set()  #: cells over the config cap
        self._open_cell: dict[tuple[int, int], Hashable] = {}
        self._thread_busy: dict[int, tuple[int, int]] = {}

    # -- verdicts ---------------------------------------------------------

    @property
    def finalized(self) -> bool:
        return self.outcome is not None

    @property
    def verdict(self) -> str:
        """PASS / FAIL / EXHAUSTED for the stream consumed so far."""
        if self.failed is not None or self.failed_history is not None:
            return "FAIL"
        if self.exhausted:
            return "EXHAUSTED"
        return "PASS"

    def counterexample_text(self) -> str | None:
        if self.failed is not None:
            return self.failed.describe()
        if self.failed_history is not None:
            return str(self.failed_history)
        return None

    # -- observability ----------------------------------------------------

    def frontier_size(self) -> int:
        return sum(c.frontier_size for c in self._cells.values())

    def live_configs(self) -> int:
        return sum(c.live_configs for c in self._cells.values())

    def retired(self) -> int:
        return sum(c.retired for c in self._cells.values())

    def configurations(self) -> int:
        return sum(c.configurations for c in self._cells.values())

    def max_frontier(self) -> int:
        return max((c.max_frontier for c in self._cells.values()), default=0)

    def max_retirement_lag(self) -> int:
        return max(
            (c.max_retirement_lag for c in self._cells.values()), default=0
        )

    def stats(self) -> dict:
        """One JSON-able snapshot of everything observable."""
        return {
            **self.counters.to_dict(),
            "verdict": self.verdict,
            "frontier": self.frontier_size(),
            "live_configs": self.live_configs(),
            "retired": self.retired(),
            "configurations": self.configurations(),
            "max_frontier": self.max_frontier(),
            "max_retirement_lag": self.max_retirement_lag(),
            "finalized": self.finalized,
        }

    # -- feeding ----------------------------------------------------------

    def feed(self, obj: dict) -> bool:
        """Consume one parsed trace line; False once the verdict is FAIL."""
        self.counters.events += 1
        if self.version is None:
            self._consume_header(obj)
            return True
        if obj.get("format") == TRACE_FORMAT:
            raise TraceError(
                "a second trace header mid-stream "
                "(two writers sharing one trace?)"
            )
        if self.version == TRACE_VERSION:
            return self._consume_history_record(obj)
        return self._consume_live_event(obj)

    def _consume_header(self, obj: dict) -> None:
        if obj.get("format") != TRACE_FORMAT:
            raise TraceError(
                f"not a trace: first line has format {obj.get('format')!r}"
            )
        version = obj.get("version")
        if version not in (TRACE_VERSION, TRACE_VERSION_LIVE):
            raise TraceError(f"unsupported trace version {version!r}")
        self.version = version
        self.header = obj
        if version == TRACE_VERSION:
            try:
                self.n_threads = int(obj["n_threads"])
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceError(
                    "v1 trace header lacks a valid n_threads"
                ) from exc

    # -- v1: one complete history per line --------------------------------

    def _consume_history_record(self, record: dict) -> bool:
        try:
            history = record_to_history(record, self.n_threads)
        except (KeyError, TypeError, ValueError, SyntaxError) as exc:
            raise TraceError(f"malformed history record: {exc}") from None
        self.counters.histories += 1
        try:
            verdict = monitor_history(
                history,
                self.model,
                engine=self.monitor_engine,
                max_configurations=self.max_configurations,
            )
        except MonitorLimitError:
            self.exhausted = True
            return True
        if not verdict.ok:
            self.failed_history = history
            self._offline_verdict = verdict
            return False
        return True

    # -- v2: one live event per line ---------------------------------------

    def _cell_for(self, invocation) -> Hashable:
        """Route an invocation to its cell (or :data:`_FOREIGN`)."""
        if not self.partition:
            return None
        cell = self.model.partition_key(invocation)
        if cell is None:
            raise PartitionUnsound(invocation)
        if self.shards > 1 and stable_shard(cell, self.shards) != self.shard_index:
            return _FOREIGN
        return cell

    def _checker(self, cell: Hashable) -> IncrementalChecker | None:
        if cell in self._dead_cells:
            return None
        checker = self._cells.get(cell)
        if checker is None:
            checker = IncrementalChecker(
                self.model, max_configurations=self.max_configurations
            )
            self._cells[cell] = checker
            self.counters.cells += 1
        return checker

    def _consume_live_event(self, obj: dict) -> bool:
        if self.outcome is not None:
            raise TraceError(
                "event after the end marker (two writers sharing one trace?)"
            )
        kind = obj.get("e")
        if kind == "end":
            try:
                self.outcome = str(obj["outcome"])
            except KeyError as exc:
                raise TraceError("end marker lacks an outcome") from exc
            return True
        try:
            thread = int(obj["t"])
            op_index = int(obj["i"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed live event: {exc}") from None
        key = (thread, op_index)
        if kind == "x":
            if key not in self._open_cell:
                raise TraceError(
                    f"indeterminate marker for operation {key} "
                    "which has no open call"
                )
            cell = self._open_cell[key]
            self.counters.indeterminate += 1
            if cell is not _FOREIGN:
                checker = self._checker(cell)
                if checker is not None:
                    checker.on_indeterminate(thread, op_index)
            return True
        try:
            event = _event_from_obj(obj)
        except (KeyError, TypeError, ValueError, SyntaxError) as exc:
            raise TraceError(f"malformed live event: {exc}") from None
        if event.is_call:
            if key in self._open_cell:
                raise TraceError(
                    f"duplicate call for operation {key} "
                    "(two writers sharing one trace?)"
                )
            if thread in self._thread_busy:
                raise TraceError(
                    f"thread {thread} issued a call while one is still open "
                    "(two writers sharing one trace?)"
                )
            cell = self._cell_for(event.invocation)
            self._open_cell[key] = cell
            self._thread_busy[thread] = key
            self.counters.calls += 1
            if cell is _FOREIGN:
                self.counters.skipped += 1
                return True
            checker = self._checker(cell)
            if checker is not None:
                checker.on_call(thread, op_index, event.invocation)
            return True
        # return event
        if key not in self._open_cell:
            raise TraceError(
                f"return for operation {key} which has no open call"
            )
        cell = self._open_cell.pop(key)
        # The thread is free again (an indeterminate op never returns, so
        # its thread stays retired forever — matching the live recorder).
        self._thread_busy.pop(thread, None)
        self.counters.returns += 1
        if cell is _FOREIGN:
            self.counters.skipped += 1
            return True
        checker = self._checker(cell)
        if checker is None:
            return True  # cell gave up (EXHAUSTED); events still validated
        assert event.response is not None
        try:
            ok = checker.on_return(thread, op_index, event.response)
        except MonitorLimitError:
            self.exhausted = True
            self.counters.exhausted_cells += 1
            self._dead_cells.add(cell)
            del self._cells[cell]
            return True
        if not ok:
            self.failed = checker.failed
            return False
        return True
