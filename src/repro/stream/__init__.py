"""Streaming online monitoring: check unbounded live traces as they grow.

The offline ``lineup monitor`` needs a finished trace; this package is
the online complement behind ``lineup watch`` — it follows a JSONL trace
*while* :class:`~repro.monitor.trace.LiveTraceWriter` is still appending
to it and keeps a rolling linearizability verdict at traffic rate:

* :mod:`repro.stream.tail` — the tailing reader: incremental polls,
  torn-final-line re-reads, rotation/truncation detection;
* :mod:`repro.stream.engine` — :class:`StreamChecker`, routing events
  into per-partition-cell incremental checkers (the online WGL lives in
  :mod:`repro.monitor.incremental`) with memory bounded by the
  concurrency window, not the trace length;
* :mod:`repro.stream.watch` — the orchestration loop (follow, lag
  budget, restart-on-rotation) and the sharded coordinator fanning
  partition cells across :class:`~repro.exec.supervisor.WorkerPool`
  workers;
* :mod:`repro.stream.stats` — periodic JSONL observability samples
  (ingest rate, frontier size, retirement lag, memory high-water).

See docs/STREAMING.md for the bounded-memory argument and the lag and
sharding semantics.
"""

from repro.stream.engine import PartitionUnsound, StreamChecker, stable_shard
from repro.stream.stats import StatsEmitter, maxrss_kb
from repro.stream.tail import TraceRotated, TraceTailer, TraceTruncated
from repro.stream.watch import (
    UNSOUND_PARTITION,
    VERDICT_PRECEDENCE,
    WatchConfig,
    WatchResult,
    merge_verdicts,
    watch_sharded,
    watch_trace,
)
from repro.stream.worker import run_stream_task

__all__ = [
    "PartitionUnsound",
    "StatsEmitter",
    "StreamChecker",
    "TraceRotated",
    "TraceTailer",
    "TraceTruncated",
    "UNSOUND_PARTITION",
    "VERDICT_PRECEDENCE",
    "WatchConfig",
    "WatchResult",
    "maxrss_kb",
    "merge_verdicts",
    "run_stream_task",
    "stable_shard",
    "watch_sharded",
    "watch_trace",
]
