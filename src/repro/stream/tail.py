"""Tailing trace reader: follow a JSONL trace while it is being written.

:class:`TraceTailer` is the stateful follower built on
:func:`repro.monitor.trace.scan_trace`: each :meth:`poll` consumes every
complete line appended since the previous poll and remembers the byte
offset to resume from.  The failure modes of tailing a live file are
made explicit instead of silently mis-read:

* **Torn final line** — the writer was caught mid-append (or crashed
  there).  The partial tail is *not* consumed; the offset stays at its
  first byte and the next poll re-reads it, so a line completed between
  polls is picked up whole.  ``tailer.torn`` reports the condition.
* **Truncation** — the file shrank below our offset (a writer reopened
  it with ``"w"``, or copytruncate-style rotation).  Everything already
  consumed may no longer match the file; :class:`TraceTruncated` is
  raised and the caller must restart checking from offset 0.
* **Rotation** — the path now names a different file (inode changed:
  rename-and-recreate rotation).  :class:`TraceRotated` is raised; the
  caller restarts from offset 0 of the new file.
* **Not-yet-created** — the writer has not opened the file yet.  Polls
  return no segments until it appears; ``tailer.exists`` says which.

The tailer never blocks and never sleeps: pacing is the caller's loop
(:mod:`repro.stream.watch`), so tests can drive polls deterministically.
"""

from __future__ import annotations

import os

from repro.monitor.trace import TraceError, TraceSegment, scan_trace

__all__ = ["TraceRotated", "TraceTailer", "TraceTruncated"]


class TraceTruncated(TraceError):
    """The trace shrank below the consumed offset; restart from 0."""


class TraceRotated(TraceError):
    """The path names a new file (inode changed); restart from 0."""


class TraceTailer:
    """Incrementally consume a JSONL trace as another process appends it."""

    def __init__(self, path: str, start_offset: int = 0) -> None:
        self.path = path
        self.offset = start_offset
        self.torn = False
        self.exists = False
        self._ino: int | None = None

    def reset(self, start_offset: int = 0) -> None:
        """Forget all progress (after rotation/truncation recovery)."""
        self.offset = start_offset
        self.torn = False
        self.exists = False
        self._ino = None

    def poll(self) -> list[TraceSegment]:
        """Consume every complete line appended since the last poll.

        Returns the (possibly empty) batch of new segments.  Raises
        :class:`TraceTruncated` / :class:`TraceRotated` when the file
        identity changed under us, and plain :class:`TraceError` on
        mid-file corruption (via :func:`scan_trace`).
        """
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            if self.exists:
                # We were mid-file and the file vanished: rotation.
                raise TraceRotated(
                    f"trace file {self.path!r} disappeared while being "
                    "followed (rotated?)"
                ) from None
            return []
        except OSError as exc:
            raise TraceError(
                f"cannot stat trace file {self.path!r}: {exc}"
            ) from exc
        if self._ino is not None and stat.st_ino != self._ino:
            raise TraceRotated(
                f"trace file {self.path!r} was replaced (inode "
                f"{self._ino} -> {stat.st_ino}); restart from offset 0"
            )
        if stat.st_size < self.offset:
            raise TraceTruncated(
                f"trace file {self.path!r} shrank to {stat.st_size} bytes "
                f"below the consumed offset {self.offset}; restart from 0"
            )
        self.exists = True
        self._ino = stat.st_ino
        if stat.st_size == self.offset:
            self.torn = False
            return []
        scan = scan_trace(self.path, self.offset)
        self.offset = scan.next_offset
        self.torn = scan.torn
        return scan.segments

    def backlog(self) -> int:
        """Unconsumed bytes currently in the file (0 when caught up)."""
        try:
            return max(0, os.stat(self.path).st_size - self.offset)
        except OSError:
            return 0
