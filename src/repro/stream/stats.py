"""Observability for the streaming monitor: periodic JSONL stat lines.

A watch session that runs for hours is only trustworthy if its health is
visible while it runs: is ingest keeping up with the writer, is the
frontier (the concurrency window) actually staying bounded, how far
behind a return does retirement trail.  :class:`StatsEmitter` samples
the :class:`~repro.stream.engine.StreamChecker` periodically and appends
one JSON object per line to a stats file — the same
line-per-observation, crash-tolerant shape as the trace format itself,
so the stats stream can be tailed by anything that tails the trace.

Each line carries::

    {"ts": <unix time>, "shard": <index>, "elapsed": <secs since start>,
     "events": ..., "ingested_per_sec": <rate since the last line>,
     "backlog_bytes": <bytes written but not yet consumed>,
     "frontier": ..., "live_configs": ..., "retired": ...,
     "max_frontier": ..., "max_retirement_lag": ...,
     "maxrss_kb": <process memory high-water>, "verdict": ...}

``maxrss_kb`` is ``ru_maxrss`` (kilobytes on Linux), the honest memory
high-water for the bounded-memory claim: it can only ratchet up, so a
flat series over a growing trace *is* the evidence.
"""

from __future__ import annotations

import json
import resource
import time

__all__ = ["StatsEmitter", "maxrss_kb"]


def maxrss_kb() -> int:
    """Process memory high-water in KiB (``ru_maxrss``; Linux units)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class StatsEmitter:
    """Append periodic stat lines for one watch session to a JSONL file."""

    def __init__(
        self,
        path: str | None,
        *,
        interval: float = 1.0,
        shard_index: int = 0,
    ) -> None:
        self.path = path
        self.interval = interval
        self.shard_index = shard_index
        self._handle = None
        self._started = time.monotonic()
        self._last_emit = self._started
        self._last_events = 0
        self.emitted = 0

    def maybe_emit(self, checker, backlog_bytes: int = 0) -> None:
        """Emit a line when the configured interval elapsed."""
        if self.path is None:
            return
        now = time.monotonic()
        if now - self._last_emit < self.interval:
            return
        self.emit(checker, backlog_bytes, now=now)

    def emit(self, checker, backlog_bytes: int = 0, now: float | None = None) -> None:
        """Emit one stat line unconditionally (also used for the final line)."""
        if self.path is None:
            return
        if now is None:
            now = time.monotonic()
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        events = checker.counters.events
        window = max(now - self._last_emit, 1e-9)
        line = {
            "ts": time.time(),
            "shard": self.shard_index,
            "elapsed": round(now - self._started, 6),
            "ingested_per_sec": round((events - self._last_events) / window, 3),
            "backlog_bytes": backlog_bytes,
            "maxrss_kb": maxrss_kb(),
            **checker.stats(),
        }
        self._handle.write(json.dumps(line, default=repr) + "\n")
        self._handle.flush()
        self._last_emit = now
        self._last_events = events
        self.emitted += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
