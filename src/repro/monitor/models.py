"""Explicit sequential models for the monitoring engine.

The two-phase check never needs a specification — phase 1 synthesizes
one.  The monitoring engine (:mod:`repro.monitor`) is the complement:
when the sequential semantics *is* known, a history can be checked
directly against it, with no serial enumeration at all.  A
:class:`SequentialModel` is that semantics in executable form: a pure
transition function ``apply(state, invocation) -> (state, response)``
over hashable states (hashability is what makes the Wing–Gong–Lowe
configuration cache of :mod:`repro.monitor.wgl` work).

``apply`` returns ``(state, None)`` when the invocation *blocks* in that
state (e.g. ``dec`` of the counter at zero) — the monitor uses this both
to prune linearization branches and to justify stuck histories.  Unknown
methods raise :class:`ModelError`: a trace mentioning an operation the
model does not speak is a usage error, never a silent PASS.

Models mirror the method names and results of the Table 1 structures
(``repro.structures``) so monitor verdicts are directly comparable with
the observation-backend verdicts on the same histories — the
cross-validation suite in ``tests/monitor`` leans on exactly that.

``partition_key`` is the P-compositionality hook (Horn & Kroening): for
per-key/per-element types it maps an invocation to its cell, or ``None``
for whole-object operations (``Count``, ``Clear``, …) that forbid
partitioning the history.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.events import Invocation, Response

__all__ = [
    "MODELS",
    "CounterModel",
    "DictModel",
    "ModelError",
    "QueueModel",
    "RegisterModel",
    "SequentialModel",
    "SetModel",
    "StackModel",
    "get_model",
    "model_names",
]


class ModelError(Exception):
    """An invocation the model cannot interpret (unknown method/arity)."""


def _ok(state: Any, value: Any = None) -> tuple[Any, Response]:
    return state, Response.of(value)


class SequentialModel:
    """One deterministic sequential type: state + transition function."""

    #: registry name (``--model NAME`` on the command line).
    name: str = "abstract"
    #: whether per-key partitioning (P-compositionality) is sound.
    partitionable: bool = False

    def initial_state(self) -> Hashable:
        raise NotImplementedError

    def apply(
        self, state: Hashable, invocation: Invocation
    ) -> tuple[Hashable, Response | None]:
        """Run *invocation* in *state*; ``None`` response means it blocks."""
        raise NotImplementedError

    def partition_key(self, invocation: Invocation) -> Hashable | None:
        """The cell *invocation* belongs to, or None for global operations."""
        return None

    def _bad(self, invocation: Invocation) -> ModelError:
        return ModelError(
            f"model {self.name!r} does not understand {invocation}"
        )

    def _arg(self, invocation: Invocation, index: int = 0) -> Any:
        try:
            return invocation.args[index]
        except IndexError:
            raise self._bad(invocation) from None


class RegisterModel(SequentialModel):
    """A single atomic cell: ``Write(v)`` / ``Read()`` (any case)."""

    name = "register"

    def __init__(self, initial: Any = None) -> None:
        self._initial = initial

    def initial_state(self) -> Hashable:
        return self._initial

    def apply(self, state, invocation):
        method = invocation.method.lower()
        if method == "write":
            return _ok(self._arg(invocation))
        if method == "read":
            if invocation.args:
                raise self._bad(invocation)
            return _ok(state, state)
        raise self._bad(invocation)


class CounterModel(SequentialModel):
    """The Fig. 3 counter: ``inc``/``get``/``set_value``, blocking ``dec``."""

    name = "counter"

    def initial_state(self) -> Hashable:
        return 0

    def apply(self, state, invocation):
        method = invocation.method
        if method == "inc":
            return _ok(state + 1)
        if method == "dec":
            if state == 0:
                return state, None  # dec blocks while the count is zero
            return _ok(state - 1)
        if method == "get":
            return _ok(state, state)
        if method == "set_value":
            return _ok(self._arg(invocation))
        raise self._bad(invocation)


class QueueModel(SequentialModel):
    """FIFO queue with the ``ConcurrentQueue`` alphabet (Fig. 1)."""

    name = "queue"

    def initial_state(self) -> Hashable:
        return ()

    def apply(self, state, invocation):
        method = invocation.method
        if method == "Enqueue":
            return _ok(state + (self._arg(invocation),))
        if method == "TryDequeue":
            if not state:
                return _ok(state, "Fail")
            return _ok(state[1:], state[0])
        if method == "TryPeek":
            return _ok(state, state[0] if state else "Fail")
        if method == "IsEmpty":
            return _ok(state, not state)
        if method == "Count":
            return _ok(state, len(state))
        if method == "ToArray":
            return _ok(state, state)
        raise self._bad(invocation)


class StackModel(SequentialModel):
    """LIFO stack with the ``ConcurrentStack`` alphabet."""

    name = "stack"

    def initial_state(self) -> Hashable:
        return ()  # top of the stack is the last element

    def apply(self, state, invocation):
        method = invocation.method
        if method == "Push":
            return _ok(state + (self._arg(invocation),))
        if method == "TryPop":
            if not state:
                return _ok(state, "Fail")
            return _ok(state[:-1], state[-1])
        if method == "TryPeek":
            return _ok(state, state[-1] if state else "Fail")
        if method == "Count":
            return _ok(state, len(state))
        if method == "ToArray":
            return _ok(state, tuple(reversed(state)))
        if method == "Clear":
            return _ok(())
        raise self._bad(invocation)


class SetModel(SequentialModel):
    """Mathematical set with the ``LockFreeSet`` alphabet.

    Per-element operations (``Insert``/``Remove``/``Contains``) partition
    by the element; ``Size``/``ToArray`` are global.
    """

    name = "set"
    partitionable = True

    _PER_ELEMENT = frozenset({"Insert", "Remove", "Contains"})

    def initial_state(self) -> Hashable:
        return frozenset()

    def apply(self, state, invocation):
        method = invocation.method
        if method == "Insert":
            key = self._arg(invocation)
            if key in state:
                return _ok(state, False)
            return _ok(state | {key}, True)
        if method == "Remove":
            key = self._arg(invocation)
            if key not in state:
                return _ok(state, False)
            return _ok(state - {key}, True)
        if method == "Contains":
            return _ok(state, self._arg(invocation) in state)
        if method == "Size":
            return _ok(state, len(state))
        if method == "ToArray":
            return _ok(state, tuple(sorted(state)))
        raise self._bad(invocation)

    def partition_key(self, invocation):
        if invocation.method in self._PER_ELEMENT:
            return self._arg(invocation)
        return None


class DictModel(SequentialModel):
    """Key/value map with the ``ConcurrentDictionary`` alphabet.

    The state is a canonically-sorted tuple of ``(key, value)`` pairs so
    that equal maps hash equally whatever the insertion order.  Per-key
    operations partition by the key; ``Count``/``IsEmpty``/``Clear`` are
    global.  ``TryAdd``/``SetItem``/``TryUpdate`` default the value to
    the key, mirroring the implementation's convention.
    """

    name = "dict"
    partitionable = True

    _PER_KEY = frozenset(
        {
            "TryAdd",
            "TryRemove",
            "TryGetValue",
            "GetItem",
            "SetItem",
            "TryUpdate",
            "ContainsKey",
        }
    )

    def initial_state(self) -> Hashable:
        return ()

    @staticmethod
    def _store(state: tuple, key: Any, value: Any) -> tuple:
        pairs = [(k, v) for k, v in state if k != key] + [(key, value)]
        return tuple(sorted(pairs, key=repr))

    @staticmethod
    def _lookup(state: tuple, key: Any) -> tuple[bool, Any]:
        for k, v in state:
            if k == key:
                return True, v
        return False, None

    def _value(self, invocation: Invocation) -> Any:
        value = invocation.args[1] if len(invocation.args) > 1 else None
        return value if value is not None else self._arg(invocation)

    def apply(self, state, invocation):
        method = invocation.method
        if method == "TryAdd":
            key = self._arg(invocation)
            present, _ = self._lookup(state, key)
            if present:
                return _ok(state, False)
            return _ok(self._store(state, key, self._value(invocation)), True)
        if method == "TryRemove":
            key = self._arg(invocation)
            present, value = self._lookup(state, key)
            if not present:
                return _ok(state, "Fail")
            return _ok(tuple(p for p in state if p[0] != key), value)
        if method == "TryGetValue":
            present, value = self._lookup(state, self._arg(invocation))
            return _ok(state, value if present else "Fail")
        if method == "GetItem":
            key = self._arg(invocation)
            present, value = self._lookup(state, key)
            if not present:
                return state, Response("raised", "KeyNotFound")
            return _ok(state, value)
        if method == "SetItem":
            key = self._arg(invocation)
            return _ok(self._store(state, key, self._value(invocation)))
        if method == "TryUpdate":
            key = self._arg(invocation)
            present, _ = self._lookup(state, key)
            if not present:
                return _ok(state, False)
            return _ok(self._store(state, key, self._value(invocation)), True)
        if method == "ContainsKey":
            present, _ = self._lookup(state, self._arg(invocation))
            return _ok(state, present)
        if method == "Count":
            return _ok(state, len(state))
        if method == "IsEmpty":
            return _ok(state, len(state) == 0)
        if method == "Clear":
            return _ok(())
        raise self._bad(invocation)

    def partition_key(self, invocation):
        if invocation.method in self._PER_KEY:
            return self._arg(invocation)
        return None


#: Registry of the built-in models, by ``--model`` name.
MODELS: dict[str, SequentialModel] = {
    model.name: model
    for model in (
        RegisterModel(),
        CounterModel(),
        QueueModel(),
        StackModel(),
        SetModel(),
        DictModel(),
    )
}


def model_names() -> tuple[str, ...]:
    return tuple(sorted(MODELS))


def get_model(name: str) -> SequentialModel:
    """Look up a model by name; raises :class:`ModelError` when unknown."""
    try:
        return MODELS[name]
    except KeyError:
        raise ModelError(
            f"unknown sequential model {name!r} "
            f"(available: {', '.join(model_names())})"
        ) from None
