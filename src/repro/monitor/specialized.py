"""Log-linear decrease-and-conquer checkers for unambiguous histories.

For the common benign case — a *full* history whose operations pin down
the abstract state transitions unambiguously — linearizability has
closed-form characterizations that need no search at all (Lee & Mathur,
*Efficient Decrease-and-Conquer Linearizability Monitoring*; the queue
axioms go back to Abdulla et al.).  This module implements them:

* **Queue** (``Enqueue``/``TryDequeue``, distinct values, no empty
  dequeues): linearizable iff (a) every dequeued value was enqueued
  exactly once and dequeued at most once, (b) no dequeue of ``v``
  completes before the enqueue of ``v`` begins, and (c) FIFO — whenever
  ``enq(v) <H enq(w)`` and ``w`` is dequeued, ``v`` is dequeued too and
  ``deq(w)`` does not complete before ``deq(v)`` begins.  Checked in
  O(n log n) with a sort and one running maximum.

* **Register** (``Write``/``Read``, distinct written values): cluster
  each write with the reads that return its value; the history is
  linearizable iff no read completes before its own write begins and the
  clusters admit a topological order under the interval-induced
  precedence (cluster C must precede D when any op of C precedes any op
  of D) — found greedily in O(n log n) because the edge relation only
  depends on each cluster's earliest return and latest call.

* **Set** / **dict**: the decrease step is the per-key partition of
  :mod:`repro.monitor.compositional`; each cell's responses determine
  its boolean/per-key state transitions, so the per-cell WGL search is
  effectively linear.  Dispatching here simply delegates to the
  compositional checker.

Every checker is *sound both ways* within its applicability guard:
``try_specialized`` returns None when the guard fails (pending
operations, repeated values, empty-dequeue responses, foreign methods…)
and the caller falls back to the general WGL search.  A specialized FAIL
re-runs a bounded WGL pass purely to extract the standard
counterexample; if that search is too large, the axiom violation is
reported on its own.
"""

from __future__ import annotations

from typing import Any

from repro.core.events import Operation
from repro.core.history import History
from repro.monitor.models import SequentialModel
from repro.monitor.wgl import (
    MonitorCounterexample,
    MonitorLimitError,
    MonitorResult,
    wgl_check,
)

__all__ = ["specialized_check", "try_specialized"]

#: Configuration cap for the WGL re-run that decorates a specialized FAIL
#: with the standard deepest-prefix counterexample.
_EXPLAIN_CAP = 20_000


def _fail(
    history: History,
    model: SequentialModel,
    reason: str,
) -> MonitorResult:
    """A specialized FAIL, with the WGL counterexample when affordable."""
    counterexample = MonitorCounterexample(
        prefix=(), frontier=(), state=None, reason=reason
    )
    try:
        rerun = wgl_check(history, model, max_configurations=_EXPLAIN_CAP)
    except MonitorLimitError:
        rerun = None
    configurations = 0
    if rerun is not None and not rerun.ok and rerun.counterexample is not None:
        configurations = rerun.configurations
        ce = rerun.counterexample
        counterexample = MonitorCounterexample(
            prefix=ce.prefix, frontier=ce.frontier, state=ce.state,
            reason=reason,
        )
    return MonitorResult(
        ok=False,
        engine="specialized",
        configurations=configurations,
        counterexample=counterexample,
    )


def _ok_result(configurations: int = 0) -> MonitorResult:
    # Specialized passes prove existence of a witness without materializing
    # one; the axioms are the proof.
    return MonitorResult(
        ok=True, engine="specialized", configurations=configurations
    )


# ---------------------------------------------------------------------------
# Queue: the distinct-value FIFO axioms.


def _try_queue(history: History, model: SequentialModel) -> MonitorResult | None:
    enqueues: dict[Any, Operation] = {}
    dequeues: dict[Any, Operation] = {}
    for op in history.operations:
        if op.pending or op.response is None or op.response.kind != "ok":
            return None
        method = op.invocation.method
        if method == "Enqueue":
            try:
                value = op.invocation.args[0]
                if value in enqueues:
                    return None  # repeated value: ambiguous
                enqueues[value] = op
            except (IndexError, TypeError):
                return None  # unhashable or missing value
        elif method == "TryDequeue":
            value = op.response.value
            if value == "Fail":
                return None  # empty dequeues need the general search
            try:
                if value in dequeues:
                    # The same value dequeued twice can never linearize
                    # when every value is enqueued at most once.
                    return _fail(
                        history,
                        model,
                        f"value {value!r} was dequeued twice but can be "
                        "enqueued at most once",
                    )
                dequeues[value] = op
            except TypeError:
                return None
        else:
            return None  # peeks/counts/… are out of the unambiguous fragment

    # (a) every dequeued value was enqueued.
    for value, deq in dequeues.items():
        if value not in enqueues:
            return _fail(
                history, model,
                f"{deq} dequeued value {value!r} which was never enqueued",
            )
    # (b) no dequeue completes before its enqueue begins.
    for value, deq in dequeues.items():
        enq = enqueues[value]
        if history.precedes(deq, enq):
            return _fail(
                history, model,
                f"{deq} completed before {enq} began",
            )
    # (c) FIFO: walk enqueues in call order, sweeping in every enqueue
    # whose return strictly precedes the current call (the <H relation),
    # and keep two running facts about the swept-in set: whether it holds
    # a never-dequeued value, and the latest dequeue-call position.
    by_return = sorted(enqueues.values(), key=lambda op: op.return_pos)
    by_call = sorted(enqueues.values(), key=lambda op: op.call_pos)
    swept = 0
    undequeued: Operation | None = None
    latest_deq: Operation | None = None
    for enq_w in by_call:
        while swept < len(by_return) and (
            by_return[swept].return_pos < enq_w.call_pos
        ):
            enq_v = by_return[swept]
            swept += 1
            value_v = enq_v.invocation.args[0]
            deq_v = dequeues.get(value_v)
            if deq_v is None:
                undequeued = undequeued or enq_v
            elif latest_deq is None or deq_v.call_pos > latest_deq.call_pos:
                latest_deq = deq_v
        value_w = enq_w.invocation.args[0]
        deq_w = dequeues.get(value_w)
        if deq_w is None:
            continue
        if undequeued is not None:
            return _fail(
                history, model,
                f"FIFO violated: {undequeued} preceded {enq_w} and "
                f"{value_w!r} was dequeued, but "
                f"{undequeued.invocation.args[0]!r} never was",
            )
        if latest_deq is not None and history.precedes(deq_w, latest_deq):
            return _fail(
                history, model,
                f"FIFO violated: {deq_w} completed before {latest_deq} "
                "began, yet its value was enqueued first",
            )
    return _ok_result()


# ---------------------------------------------------------------------------
# Register: the distinct-write cluster algorithm.


class _Cluster:
    """One write plus the reads that observed its value (a block)."""

    __slots__ = ("write", "reads", "min_return", "max_call")

    def __init__(self, write: Operation | None) -> None:
        self.write = write
        self.reads: list[Operation] = []
        self.min_return = write.return_pos if write is not None else None
        self.max_call = write.call_pos if write is not None else None

    def add(self, read: Operation) -> None:
        self.reads.append(read)
        if self.min_return is None or read.return_pos < self.min_return:
            self.min_return = read.return_pos
        if self.max_call is None or read.call_pos > self.max_call:
            self.max_call = read.call_pos


def _try_register(
    history: History, model: SequentialModel
) -> MonitorResult | None:
    initial = model.initial_state() if hasattr(model, "initial_state") else None
    writes: dict[Any, Operation] = {}
    reads: list[Operation] = []
    for op in history.operations:
        if op.pending or op.response is None or op.response.kind != "ok":
            return None
        method = op.invocation.method.lower()
        if method == "write":
            try:
                value = op.invocation.args[0]
                if value in writes or value == initial:
                    return None  # repeated / initial-colliding writes
                writes[value] = op
            except (IndexError, TypeError):
                return None
        elif method == "read":
            reads.append(op)
        else:
            return None

    initial_cluster = _Cluster(write=None)
    clusters: dict[Any, _Cluster] = {
        value: _Cluster(write) for value, write in writes.items()
    }
    for read in reads:
        value = read.response.value
        if value == initial:
            initial_cluster.add(read)
            continue
        cluster = clusters.get(value)
        if cluster is None:
            return _fail(
                history, model,
                f"{read} observed value {value!r} which was never written",
            )
        assert cluster.write is not None
        if history.precedes(read, cluster.write):
            return _fail(
                history, model,
                f"{read} completed before {cluster.write} began",
            )
        cluster.add(read)

    # The initial-value cluster, when inhabited, must come first: no other
    # cluster's operation may precede any initial read.
    blocks = list(clusters.values())
    if initial_cluster.reads:
        min_other = min(
            (c.min_return for c in blocks if c.min_return is not None),
            default=None,
        )
        if min_other is not None and min_other < initial_cluster.max_call:
            offending = next(
                r for r in initial_cluster.reads
                if any(
                    c.min_return is not None and c.min_return < r.call_pos
                    for c in blocks
                )
            )
            return _fail(
                history, model,
                f"{offending} observed the initial value after some write "
                "had already completed",
            )

    # Greedy topological order of the blocks.  Edge C -> D exists iff some
    # op of C precedes (<H) some op of D, i.e. min_return(C) < max_call(D);
    # so D is a source among the remaining blocks iff max_call(D) <= the
    # minimum min_return over all *other* remaining blocks.  Any source is
    # safe to emit next (Kahn).  Only three blocks can possibly be a
    # source each round: the one with the smallest max_call, the one with
    # the smallest min_return, and (when those coincide) the second
    # smallest max_call — every other block has a larger max_call against
    # the same bound.  Two lazy-deletion heaps make each round O(log n).
    if _order_blocks(blocks) is None:
        return _fail(
            history, model,
            "no linear order of the write blocks is consistent with real "
            "time (two write blocks each contain an operation that "
            "completed before an operation of the other began)",
        )
    return _ok_result()


def _order_blocks(blocks: list[_Cluster]) -> list[_Cluster] | None:
    """Topologically order *blocks* under the interval precedence, or None.

    Kahn's algorithm specialised to the edge relation
    ``C -> D iff min_return(C) < max_call(D)``: each round emits a source
    (a block whose max_call is at most every other block's min_return),
    which only the candidates described above can be.
    """
    import heapq

    alive = set(range(len(blocks)))
    by_minret = [(c.min_return, i) for i, c in enumerate(blocks)]
    by_maxcall = [(c.max_call, i) for i, c in enumerate(blocks)]
    heapq.heapify(by_minret)
    heapq.heapify(by_maxcall)
    order: list[_Cluster] = []

    def _peek(heap: list, skip: int = -1, count: int = 1) -> list[int]:
        """Top *count* alive block ids of *heap* (excluding *skip*)."""
        popped = []
        found: list[int] = []
        while heap and len(found) < count:
            item = heapq.heappop(heap)
            popped.append(item)
            if item[1] in alive and item[1] != skip:
                found.append(item[1])
        for item in popped:
            heapq.heappush(heap, item)
        return found

    while len(alive) > 1:
        (a1,) = _peek(by_minret)  # smallest min_return
        (m2_id,) = _peek(by_minret, skip=a1)
        m1 = blocks[a1].min_return
        m2 = blocks[m2_id].min_return
        source = None
        for candidate in _peek(by_maxcall, count=2) + [a1]:
            bound = m2 if candidate == a1 else m1
            if blocks[candidate].max_call <= bound:
                source = candidate
                break
        if source is None:
            return None
        alive.discard(source)
        order.append(blocks[source])
    order.extend(blocks[i] for i in alive)
    return order


# ---------------------------------------------------------------------------
# Dispatch.


def try_specialized(
    history: History, model: SequentialModel
) -> MonitorResult | None:
    """Run the specialized checker for *model* if one applies, else None.

    Only full, non-stuck histories qualify — pending operations reopen
    the ambiguity the closed forms rule out.
    """
    if history.stuck or any(op.pending for op in history.operations):
        return None
    if model.name == "queue":
        return _try_queue(history, model)
    if model.name == "register":
        return _try_register(history, model)
    if model.partitionable:
        # The decrease step for sets/dicts is the per-key partition; each
        # cell's state is tiny, so delegate to the compositional engine.
        from repro.monitor.compositional import compositional_check

        result = compositional_check(history, model)
        if result.engine == "compositional":
            return MonitorResult(
                ok=result.ok,
                engine="specialized",
                configurations=result.configurations,
                witness=result.witness,
                counterexample=result.counterexample,
                cell=result.cell,
            )
        return None  # partition refused (global ops) — not specialized
    return None


def specialized_check(
    history: History,
    model: SequentialModel,
    *,
    max_configurations: int | None = None,
) -> MonitorResult:
    """Specialized check with WGL fallback on ambiguity."""
    result = try_specialized(history, model)
    if result is not None:
        return result
    return wgl_check(history, model, max_configurations=max_configurations)
