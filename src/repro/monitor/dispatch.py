"""Engine dispatch: pick the cheapest applicable monitoring algorithm.

``auto`` order, cheapest first:

1. :mod:`repro.monitor.specialized` — closed-form axioms, full
   unambiguous histories only;
2. :mod:`repro.monitor.compositional` — per-key partition, when the
   model is partitionable and the history has no global operations;
3. :mod:`repro.monitor.wgl` — the general search, always applicable.

:func:`monitor_history` is the complete per-history verdict the checker
backend and the ``lineup monitor`` subcommand share: the linearization
check plus, for stuck histories, the blocking justification of every
pending operation (a pending op must be *allowed* to block — reachable
model state in which its invocation blocks; see
:func:`repro.monitor.wgl.check_stuck_history_model`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Operation
from repro.core.history import History
from repro.monitor.compositional import compositional_check
from repro.monitor.models import SequentialModel
from repro.monitor.specialized import specialized_check, try_specialized
from repro.monitor.wgl import (
    MonitorResult,
    StuckMonitorResult,
    check_stuck_history_model,
    wgl_check,
)

__all__ = ["ENGINES", "MonitorVerdict", "check_history_against_model", "monitor_history"]

#: Engine names accepted by ``--engine`` and the config's ``model`` path.
ENGINES = ("auto", "wgl", "compositional", "specialized")


def check_history_against_model(
    history: History,
    model: SequentialModel,
    *,
    engine: str = "auto",
    max_configurations: int | None = None,
) -> MonitorResult:
    """The linearization half of the verdict, via the chosen engine."""
    if engine == "wgl":
        return wgl_check(history, model, max_configurations=max_configurations)
    if engine == "compositional":
        return compositional_check(
            history, model, max_configurations=max_configurations
        )
    if engine == "specialized":
        return specialized_check(
            history, model, max_configurations=max_configurations
        )
    if engine == "auto":
        result = try_specialized(history, model)
        if result is not None:
            return result
        return compositional_check(
            history, model, max_configurations=max_configurations
        )
    raise ValueError(
        f"unknown monitor engine {engine!r} (choose from {', '.join(ENGINES)})"
    )


@dataclass(frozen=True)
class MonitorVerdict:
    """Complete verdict of one history: linearization + blocking.

    Pending operations come in two flavours, with different obligations:

    * in a **stuck** history the scheduler observed the operation
      blocking, so the verdict additionally demands a blocking
      justification (``stuck``);
    * in an **open** history (a live recording with indeterminate
      operations — timed-out or connection-dropped calls that may or may
      not have taken effect) nothing was observed to block, so each
      pending operation is simply free to linearize anywhere after its
      call, or nowhere.  ``resolved_pending`` reports how the found
      witness resolved each one: ``True`` means the witness linearized
      it (the operation is assumed to have taken effect), ``False``
      means the witness dropped it.
    """

    result: MonitorResult
    #: blocking justification, run only for stuck histories.
    stuck: StuckMonitorResult | None = None
    #: open-history pending ops paired with "did the witness take it".
    resolved_pending: tuple[tuple[Operation, bool], ...] = ()

    @property
    def ok(self) -> bool:
        return self.result.ok and (self.stuck is None or self.stuck.ok)

    @property
    def failed_pending(self) -> "Operation | None":
        """The unjustified pending operation, when blocking failed."""
        return self.stuck.failed if self.stuck is not None else None


def _resolve_pending(history: History, result: MonitorResult):
    """Pair each pending op with whether the witness linearized it."""
    if not result.ok or result.witness is None:
        return ()
    taken = {op.key for op, _resp in result.witness}
    return tuple(
        (op, op.key in taken) for op in history.pending_operations
    )


def monitor_history(
    history: History,
    model: SequentialModel,
    *,
    engine: str = "auto",
    max_configurations: int | None = None,
) -> MonitorVerdict:
    """Check one history end to end against *model*.

    Stuck histories get the blocking-justification pass on top of the
    linearization check; open histories (pending operations without an
    observed block — the indeterminate-operation regime of live
    recordings) skip it and instead report how the witness resolved each
    pending operation.
    """
    result = check_history_against_model(
        history, model, engine=engine, max_configurations=max_configurations
    )
    stuck: StuckMonitorResult | None = None
    resolved: tuple[tuple[Operation, bool], ...] = ()
    if result.ok and history.stuck:
        stuck = check_stuck_history_model(
            history, model, max_configurations=max_configurations
        )
    elif not history.stuck and history.pending_operations:
        resolved = _resolve_pending(history, result)
    return MonitorVerdict(result=result, stuck=stuck, resolved_pending=resolved)
