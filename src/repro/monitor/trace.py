"""Versioned JSONL trace files: concurrent histories at rest.

The monitoring engine's input does not have to come from our scheduler —
a production log, a crash-quarantine artifact, or another tool can all
supply histories.  This module defines the interchange format, in two
versions that share line 1 (the envelope header, following the PR 3
conventions of :mod:`repro.core.observations`).

**Version 1 — history mode** (the scheduler dump format):

* **line 1** — ``{"format": "lineup-trace", "version": 1,
  "n_threads": N, "subject": ..., "test": ...}`` where ``subject`` is a
  display name and ``test`` the serialized finite test (both optional).
* **every further line** — one history: ``{"stuck": bool, "divergent":
  bool, "events": [...]}`` with call events ``{"e": "c", "t": thread,
  "i": op_index, "m": method, "a": "<repr of args tuple>"}`` and return
  events ``{"e": "r", "t": thread, "i": op_index, "k": "ok"|"raised",
  "v": <value>}``.  Argument tuples and ``ok`` values are serialized
  with ``repr`` and parsed back with ``ast.literal_eval`` — the same
  round-trip every other artifact in this repo uses; ``raised`` values
  are plain exception-name strings.

**Version 2 — live mode** (the :mod:`repro.live` wall-clock recorder):

* **line 1** — ``{"format": "lineup-trace", "version": 2, "mode":
  "live", "sessions": N, "subject": ..., "model": ...}``.
* **every further line** is one *event*, appended the moment it happens
  (an interrupted recording is a loadable prefix):

  - calls/returns use the version-1 event objects plus a ``"ts"`` key —
    seconds on a monotonic clock since the recording started;
  - ``{"e": "x", "t": ..., "i": ..., "why": ..., "ts": ...}`` marks an
    operation *indeterminate*: the client timed out or lost its
    connection after the request may have been sent, so whether the
    operation took effect is unknowable.  The marker is an annotation —
    the operation simply never gets a return event, so it loads as a
    **pending** operation and is checked under the open-history
    semantics of :mod:`repro.monitor.wgl` (it may take effect anywhere
    after its call, or not at all);
  - ``{"e": "end", "outcome": ..., "ts": ...}`` finalizes the recording
    (``outcome`` is ``"drained"``, ``"sut-died"``, ...).  A missing end
    marker means the recorder itself died; the prefix still loads, with
    ``LiveTraceMeta.finalized`` False.

  The whole file describes **one** history: the per-line events in file
  order, with every call that has no matching return left pending.  The
  recorder appends the call line *before* sending the request and the
  return line *after* receiving the response, so the recorded interval
  of every operation contains the real one — any precedence edge in
  the loaded history is a true real-time edge, which is what makes a
  FAIL verdict on a live trace sound.

JSONL + append-only makes both writers crash-safe by construction: each
write is one line followed by a flush, so a crash can lose at most the
line being written.  The loader accepts a truncated *final* line for
exactly that reason (and only the final line — corruption anywhere else,
including the torn interleavings produced by two concurrent writers
sharing one path, raises :class:`TraceError`).

:func:`default_trace_path` derives a deterministic filename from the
subject and test (a content hash), so two cooperating processes — the
sandboxed worker dumping traces and the supervisor writing the crash
report that references them — agree on the path without talking.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Any, Iterable

from repro.core.events import Event, Invocation, Response
from repro.core.history import History

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TRACE_VERSION_LIVE",
    "LiveTraceMeta",
    "LiveTraceWriter",
    "TraceError",
    "TraceFile",
    "TraceScan",
    "TraceSegment",
    "TraceWriter",
    "default_trace_path",
    "history_to_record",
    "iter_trace",
    "load_trace",
    "record_to_history",
    "scan_trace",
]

TRACE_FORMAT = "lineup-trace"
TRACE_VERSION = 1
#: The live event-per-line format written by :mod:`repro.live`.
TRACE_VERSION_LIVE = 2
_SUPPORTED_VERSIONS = (TRACE_VERSION, TRACE_VERSION_LIVE)


class TraceError(Exception):
    """A trace file could not be read, parsed, or validated."""


def _event_to_obj(event: Event) -> dict:
    if event.is_call:
        assert event.invocation is not None
        obj: dict[str, Any] = {
            "e": "c",
            "t": event.thread,
            "i": event.op_index,
            "m": event.invocation.method,
            "a": repr(tuple(event.invocation.args)),
        }
        if event.invocation.target is not None:
            obj["g"] = event.invocation.target
        return obj
    assert event.response is not None
    value = (
        str(event.response.value)
        if event.response.kind == "raised"
        else repr(event.response.value)
    )
    return {
        "e": "r",
        "t": event.thread,
        "i": event.op_index,
        "k": event.response.kind,
        "v": value,
    }


def _event_from_obj(obj: dict) -> Event:
    kind = obj["e"]
    thread = int(obj["t"])
    op_index = int(obj["i"])
    if kind == "c":
        args = ast.literal_eval(obj["a"])
        return Event.call(
            thread,
            op_index,
            Invocation(obj["m"], tuple(args), obj.get("g")),
        )
    if kind == "r":
        if obj["k"] == "raised":
            response = Response("raised", obj["v"])
        else:
            response = Response("ok", ast.literal_eval(obj["v"]))
        return Event.ret(thread, op_index, response)
    raise ValueError(f"unknown event kind {kind!r}")


def history_to_record(history: History, verdict: str | None = None) -> dict:
    """One history as a JSON-able trace record."""
    record: dict[str, Any] = {
        "events": [_event_to_obj(event) for event in history.events],
    }
    if history.stuck:
        record["stuck"] = True
    if history.divergent:
        record["divergent"] = True
    if verdict is not None:
        record["verdict"] = verdict
    return record


def record_to_history(record: dict, n_threads: int) -> History:
    return History(
        (_event_from_obj(obj) for obj in record["events"]),
        n_threads=n_threads,
        stuck=bool(record.get("stuck", False)),
        divergent=bool(record.get("divergent", False)),
    )


@dataclass
class LiveTraceMeta:
    """Version-2 metadata: what the wall-clock recorder saw.

    Everything here is *annotation* — the checkable history is carried by
    the call/return events alone.  ``indeterminate`` lists the
    ``(thread, op_index, why)`` markers; ``intervals`` maps operation
    keys to ``(ts_call, ts_return_or_None)`` monotonic-clock pairs.
    """

    sessions: int
    model: str | None = None
    #: "drained", "sut-died", ... — None when no end marker was found
    #: (the recorder itself died mid-recording).
    outcome: str | None = None
    indeterminate: list[tuple[int, int, str]] = field(default_factory=list)
    intervals: dict[tuple[int, int], tuple[float, float | None]] = field(
        default_factory=dict
    )

    @property
    def finalized(self) -> bool:
        return self.outcome is not None


@dataclass
class TraceFile:
    """A loaded trace: the header metadata plus the histories, in order."""

    n_threads: int
    subject: str | None = None
    test: dict | None = None  #: serialized FiniteTest (checkpoint format)
    histories: list[History] = field(default_factory=list)
    #: per-history verdict annotations ("FAIL"/...), None when absent.
    verdicts: list[str | None] = field(default_factory=list)
    #: True when the final line was truncated (interrupted writer).
    truncated: bool = False
    #: header version the file was written with.
    version: int = TRACE_VERSION
    #: version-2 recordings only: the live-recording metadata.
    live: LiveTraceMeta | None = None

    def __len__(self) -> int:
        return len(self.histories)


class TraceWriter:
    """Append histories to a JSONL trace file, one flushed line each.

    The header is written on open; ``write`` appends one record.  Usable
    as a context manager.  Opening an existing path truncates it — a
    trace describes one (subject, test) run.
    """

    def __init__(
        self,
        path: str,
        n_threads: int,
        *,
        subject: str | None = None,
        test: dict | None = None,
    ) -> None:
        self.path = path
        self.count = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle: IO[str] | None = open(path, "w", encoding="utf-8")
        header: dict[str, Any] = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "n_threads": n_threads,
        }
        if subject is not None:
            header["subject"] = subject
        if test is not None:
            header["test"] = test
        self._emit(header)

    def _emit(self, obj: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self._handle.flush()

    def write(self, history: History, verdict: str | None = None) -> None:
        self._emit(history_to_record(history, verdict))
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LiveTraceWriter:
    """Append version-2 live events to a JSONL trace with explicit flushing.

    Thread-safe: concurrent sessions append through one lock, so file
    order is a real interleaving of the append calls.

    **Flush policy / visibility guarantee** (documented in docs/LIVE.md):
    every ``flush_every_n``-th appended line — and, when ``flush_interval``
    is positive, any pending line older than that many seconds at the next
    append — is flushed to the OS, at which point a same-host follower
    (``lineup watch --follow``, or anything built on :func:`iter_trace`)
    observes it.  The defaults (``flush_every_n=1``) keep the original
    contract: each line is visible before the writer takes another step,
    and a crash loses at most the line being written.  Raising
    ``flush_every_n`` trades promptness (a follower may lag up to n
    events behind, and a crash may lose up to n buffered lines) for fewer
    syscalls on hot recording paths.  :meth:`finalize` always flushes and
    additionally fsyncs so the end marker survives a machine crash.
    """

    def __init__(
        self,
        path: str,
        sessions: int,
        *,
        subject: str | None = None,
        model: str | None = None,
        flush_every_n: int = 1,
        flush_interval: float = 0.0,
    ) -> None:
        if flush_every_n < 1:
            raise ValueError("flush_every_n must be >= 1")
        if flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        self.path = path
        self.events = 0
        self.flush_every_n = flush_every_n
        self.flush_interval = flush_interval
        self._pending = 0  #: lines written but not yet flushed
        self._last_flush = time.monotonic()
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle: IO[str] | None = open(path, "w", encoding="utf-8")
        header: dict[str, Any] = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION_LIVE,
            "mode": "live",
            "sessions": sessions,
        }
        if subject is not None:
            header["subject"] = subject
        if model is not None:
            header["model"] = model
        self._emit(header, force_flush=True)
        self.events = 0  # the header is not an event

    def _emit(self, obj: dict, force_flush: bool = False) -> None:
        with self._lock:
            if self._handle is None:
                raise TraceError(
                    f"live trace {self.path!r} is already finalized"
                )
            self._handle.write(json.dumps(obj, separators=(",", ":")) + "\n")
            self._pending += 1
            self.events += 1
            now = time.monotonic()
            if (
                force_flush
                or self._pending >= self.flush_every_n
                or (
                    self.flush_interval > 0
                    and now - self._last_flush >= self.flush_interval
                )
            ):
                self._handle.flush()
                self._pending = 0
                self._last_flush = now

    def flush(self) -> None:
        """Flush any buffered lines to the OS immediately."""
        with self._lock:
            if self._handle is not None and self._pending:
                self._handle.flush()
                self._pending = 0
                self._last_flush = time.monotonic()

    def record_call(
        self, thread: int, op_index: int, invocation: Invocation, ts: float
    ) -> None:
        obj: dict[str, Any] = {
            "e": "c",
            "t": thread,
            "i": op_index,
            "m": invocation.method,
            "a": repr(tuple(invocation.args)),
            "ts": ts,
        }
        if invocation.target is not None:
            obj["g"] = invocation.target
        self._emit(obj)

    def record_return(
        self, thread: int, op_index: int, response: Response, ts: float
    ) -> None:
        value = (
            str(response.value)
            if response.kind == "raised"
            else repr(response.value)
        )
        self._emit(
            {
                "e": "r",
                "t": thread,
                "i": op_index,
                "k": response.kind,
                "v": value,
                "ts": ts,
            }
        )

    def record_indeterminate(
        self, thread: int, op_index: int, why: str, ts: float
    ) -> None:
        """Mark an operation as possibly-effective-but-unobserved.

        Annotation only: the operation stays pending (no return event is
        ever written for it) and is checked under the open-history
        semantics.
        """
        self._emit({"e": "x", "t": thread, "i": op_index, "why": why, "ts": ts})

    def finalize(self, outcome: str, ts: float) -> None:
        """Write the end marker, fsync, and close the file."""
        self._emit({"e": "end", "outcome": outcome, "ts": ts})
        self.close(sync=True)

    def close(self, sync: bool = False) -> None:
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "LiveTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _read_lines(path: str) -> list[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read().splitlines()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path!r}: {exc}") from exc


def load_trace(path: str) -> TraceFile:
    """Read a trace file; raises :class:`TraceError` on anything malformed.

    Understands both supported versions (1: history per line; 2: live
    event per line).  A truncated final line (the writer died mid-record)
    is tolerated and flagged via ``TraceFile.truncated`` — every complete
    record before it is returned.  Corruption anywhere else — including a
    record torn mid-line by a second concurrent writer — raises
    :class:`TraceError` naming the offending line; a trace never loads as
    silent garbage.
    """
    lines = _read_lines(path)
    if not lines:
        raise TraceError(f"trace file {path!r} is empty (no header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceError(f"trace file {path!r} has a corrupt header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceError(
            f"not a trace file: format is {header.get('format')!r} "
            f"(expected {TRACE_FORMAT!r})"
            if isinstance(header, dict)
            else f"trace file {path!r} has a malformed header"
        )
    version = header.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise TraceError(
            f"trace file version {version!r} is not supported "
            f"(this reader understands versions "
            f"{', '.join(str(v) for v in _SUPPORTED_VERSIONS)})"
        )
    if version == TRACE_VERSION_LIVE:
        return _load_live_trace(path, header, lines)
    return _load_history_trace(path, header, lines)


def _load_history_trace(path: str, header: dict, lines: list[str]) -> TraceFile:
    try:
        n_threads = int(header["n_threads"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(
            f"trace file {path!r} header lacks a valid n_threads"
        ) from exc

    trace = TraceFile(
        n_threads=n_threads,
        subject=header.get("subject"),
        test=header.get("test"),
    )
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        last = number == len(lines)
        try:
            record = json.loads(line)
            history = record_to_history(record, n_threads)
        except json.JSONDecodeError:
            if last:
                trace.truncated = True
                break
            raise TraceError(
                f"trace file {path!r} line {number} is corrupt"
            ) from None
        except (KeyError, TypeError, ValueError, SyntaxError) as exc:
            raise TraceError(
                f"trace file {path!r} line {number} is malformed: {exc}"
            ) from None
        trace.histories.append(history)
        trace.verdicts.append(record.get("verdict"))
    return trace


def _load_live_trace(path: str, header: dict, lines: list[str]) -> TraceFile:
    """Assemble the single history of a version-2 live recording.

    Validation is deliberately strict: a duplicate call for an operation
    key, a return or indeterminate marker without a matching open call,
    or events after the end marker all raise :class:`TraceError` — those
    are exactly the shapes a second concurrent writer (or a buggy
    recorder) produces, and blending them into a verdict would be
    unsound.
    """
    try:
        sessions = int(header["sessions"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(
            f"trace file {path!r} header lacks a valid sessions count"
        ) from exc
    meta = LiveTraceMeta(sessions=sessions, model=header.get("model"))
    trace = TraceFile(
        n_threads=sessions,
        subject=header.get("subject"),
        version=TRACE_VERSION_LIVE,
        live=meta,
    )

    events: list[Event] = []
    open_calls: set[tuple[int, int]] = set()
    closed: set[tuple[int, int]] = set()
    truncated = False
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        last = number == len(lines)
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if last:
                truncated = True
                break
            raise TraceError(
                f"trace file {path!r} line {number} is corrupt"
            ) from None
        if not isinstance(obj, dict):
            raise TraceError(
                f"trace file {path!r} line {number} is not an event object"
            )
        if obj.get("format") == TRACE_FORMAT:
            raise TraceError(
                f"trace file {path!r} line {number}: a second trace header "
                "mid-stream (two writers sharing one trace?)"
            )
        if meta.outcome is not None:
            raise TraceError(
                f"trace file {path!r} line {number}: event after the end "
                "marker (two writers sharing one trace?)"
            )
        kind = obj.get("e")
        try:
            if kind == "end":
                meta.outcome = str(obj["outcome"])
                continue
            thread = int(obj["t"])
            ts = float(obj.get("ts", 0.0))
            if kind == "x":
                key = (thread, int(obj["i"]))
                if key not in open_calls:
                    raise TraceError(
                        f"trace file {path!r} line {number}: indeterminate "
                        f"marker for operation {key} which has no open call"
                    )
                meta.indeterminate.append((key[0], key[1], str(obj["why"])))
                continue
            event = _event_from_obj(obj)
        except TraceError:
            raise
        except (KeyError, TypeError, ValueError, SyntaxError) as exc:
            if last:
                truncated = True
                break
            raise TraceError(
                f"trace file {path!r} line {number} is malformed: {exc}"
            ) from None
        key = (event.thread, event.op_index)
        if event.is_call:
            if key in open_calls or key in closed:
                raise TraceError(
                    f"trace file {path!r} line {number}: duplicate call for "
                    f"operation {key} (two writers sharing one trace?)"
                )
            if any(open_key[0] == event.thread for open_key in open_calls):
                # The recorder retires a logical thread the moment one of
                # its operations goes indeterminate; a second open call on
                # the same thread cannot come from one well-behaved writer.
                raise TraceError(
                    f"trace file {path!r} line {number}: thread "
                    f"{event.thread} issued a call while one is still open "
                    "(two writers sharing one trace?)"
                )
            open_calls.add(key)
            meta.intervals[key] = (ts, None)
        else:
            if key not in open_calls:
                raise TraceError(
                    f"trace file {path!r} line {number}: return for "
                    f"operation {key} which has no open call"
                )
            open_calls.discard(key)
            closed.add(key)
            meta.intervals[key] = (meta.intervals[key][0], ts)
        events.append(event)

    trace.truncated = truncated
    n_threads = max(
        sessions, 1 + max((e.thread for e in events), default=-1)
    )
    trace.n_threads = n_threads
    # One history for the whole recording; calls that never returned are
    # pending and checked under the open-history (may-or-may-not-have-
    # taken-effect) semantics.  Not "stuck": nothing was observed to
    # block, so no blocking justification is demanded.
    trace.histories.append(History(events, n_threads=n_threads, stuck=False))
    trace.verdicts.append(None)
    return trace


@dataclass(frozen=True)
class TraceSegment:
    """One complete JSONL line of a trace, with its byte extent.

    ``start``/``end`` are byte offsets into the file: the line occupies
    ``[start, end)`` including its terminating newline, so ``end`` is the
    exact offset to resume from after consuming this segment.
    """

    obj: dict
    start: int
    end: int


@dataclass
class TraceScan:
    """Result of one incremental pass over a trace file.

    ``next_offset`` is where the next pass should resume: just past the
    last complete line.  When ``torn`` is True the file currently ends in
    an incomplete (not newline-terminated) line starting exactly at
    ``next_offset`` — the writer is mid-append or died there; a follower
    re-reads from that offset once the file grows.  ``size`` is the file
    size observed by this pass (``size - next_offset`` is the torn tail's
    length, 0 when not torn).
    """

    segments: list[TraceSegment] = field(default_factory=list)
    next_offset: int = 0
    torn: bool = False
    size: int = 0


def scan_trace(path: str, start_offset: int = 0) -> TraceScan:
    """Read every complete JSONL line of *path* from *start_offset* on.

    The incremental complement of :func:`load_trace`: instead of slurping
    the whole file it consumes ``[start_offset, EOF)``, parses each
    newline-terminated line, and reports exactly where a follower should
    resume (:class:`TraceScan.next_offset`) — including the byte offset
    of a torn final line, so tailing readers lose nothing to a writer
    caught mid-append.

    Only the *final* line may be incomplete; a newline-terminated line
    that is not valid JSON is corruption anywhere in the file and raises
    :class:`TraceError` (same contract as :func:`load_trace`).  Blank
    lines are skipped but still advance the offset.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(start_offset)
            data = handle.read()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path!r}: {exc}") from exc
    scan = TraceScan(next_offset=start_offset, size=start_offset + len(data))
    cursor = 0
    while True:
        newline = data.find(b"\n", cursor)
        if newline < 0:
            scan.torn = cursor < len(data)
            break
        line = data[cursor:newline]
        start = start_offset + cursor
        end = start_offset + newline + 1
        cursor = newline + 1
        scan.next_offset = end
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"trace file {path!r} is corrupt at byte offset {start}: {exc}"
            ) from None
        if not isinstance(obj, dict):
            raise TraceError(
                f"trace file {path!r} at byte offset {start} is not a "
                "JSON object"
            )
        scan.segments.append(TraceSegment(obj=obj, start=start, end=end))
    return scan


def iter_trace(path: str, start_offset: int = 0):
    """Yield :class:`TraceSegment` for each complete line, incrementally.

    A generator over one :func:`scan_trace` pass: iteration stops at the
    first torn (incomplete) line instead of raising, and each yielded
    segment carries its ``end`` offset — resume a later pass from the
    last segment's ``end`` (or from ``start_offset`` when nothing was
    yielded) to pick up exactly where this one left off.  For rotation/
    truncation detection and stateful following, use
    :class:`repro.stream.tail.TraceTailer`, which is built on this.
    """
    yield from scan_trace(path, start_offset).segments


def default_trace_path(directory: str, subject: str, test: dict) -> str:
    """Deterministic trace path for one (subject, test) pair.

    Both the worker dumping the trace and the supervisor writing the
    crash report that references it derive the same name from the same
    inputs: a sanitized subject plus a content hash of the test.
    """
    digest = hashlib.sha1(
        json.dumps({"subject": subject, "test": test}, sort_keys=True).encode()
    ).hexdigest()[:12]
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in subject)
    return os.path.join(directory, f"{safe}-{digest}.trace.jsonl")
