"""Versioned JSONL trace files: concurrent histories at rest.

The monitoring engine's input does not have to come from our scheduler —
a production log, a crash-quarantine artifact, or another tool can all
supply histories.  This module defines the interchange format:

* **line 1** — the envelope header, following the PR 3 conventions of
  :mod:`repro.core.observations`: ``{"format": "lineup-trace",
  "version": 1, "n_threads": N, "subject": ..., "test": ...}`` where
  ``subject`` is a display name and ``test`` the serialized finite test
  (both optional).
* **every further line** — one history: ``{"stuck": bool, "divergent":
  bool, "events": [...]}`` with call events ``{"e": "c", "t": thread,
  "i": op_index, "m": method, "a": "<repr of args tuple>"}`` and return
  events ``{"e": "r", "t": thread, "i": op_index, "k": "ok"|"raised",
  "v": <value>}``.  Argument tuples and ``ok`` values are serialized
  with ``repr`` and parsed back with ``ast.literal_eval`` — the same
  round-trip every other artifact in this repo uses; ``raised`` values
  are plain exception-name strings.

JSONL + append-only makes the writer crash-safe by construction: each
``write`` is one line followed by a flush, so a crash can lose at most
the line being written.  The loader accepts a truncated *final* line for
exactly that reason (and only the final line — corruption anywhere else
raises :class:`TraceError`).

:func:`default_trace_path` derives a deterministic filename from the
subject and test (a content hash), so two cooperating processes — the
sandboxed worker dumping traces and the supervisor writing the crash
report that references them — agree on the path without talking.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import IO, Any, Iterable

from repro.core.events import Event, Invocation, Response
from repro.core.history import History

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceError",
    "TraceFile",
    "TraceWriter",
    "default_trace_path",
    "history_to_record",
    "load_trace",
    "record_to_history",
]

TRACE_FORMAT = "lineup-trace"
TRACE_VERSION = 1


class TraceError(Exception):
    """A trace file could not be read, parsed, or validated."""


def _event_to_obj(event: Event) -> dict:
    if event.is_call:
        assert event.invocation is not None
        obj: dict[str, Any] = {
            "e": "c",
            "t": event.thread,
            "i": event.op_index,
            "m": event.invocation.method,
            "a": repr(tuple(event.invocation.args)),
        }
        if event.invocation.target is not None:
            obj["g"] = event.invocation.target
        return obj
    assert event.response is not None
    value = (
        str(event.response.value)
        if event.response.kind == "raised"
        else repr(event.response.value)
    )
    return {
        "e": "r",
        "t": event.thread,
        "i": event.op_index,
        "k": event.response.kind,
        "v": value,
    }


def _event_from_obj(obj: dict) -> Event:
    kind = obj["e"]
    thread = int(obj["t"])
    op_index = int(obj["i"])
    if kind == "c":
        args = ast.literal_eval(obj["a"])
        return Event.call(
            thread,
            op_index,
            Invocation(obj["m"], tuple(args), obj.get("g")),
        )
    if kind == "r":
        if obj["k"] == "raised":
            response = Response("raised", obj["v"])
        else:
            response = Response("ok", ast.literal_eval(obj["v"]))
        return Event.ret(thread, op_index, response)
    raise ValueError(f"unknown event kind {kind!r}")


def history_to_record(history: History, verdict: str | None = None) -> dict:
    """One history as a JSON-able trace record."""
    record: dict[str, Any] = {
        "events": [_event_to_obj(event) for event in history.events],
    }
    if history.stuck:
        record["stuck"] = True
    if history.divergent:
        record["divergent"] = True
    if verdict is not None:
        record["verdict"] = verdict
    return record


def record_to_history(record: dict, n_threads: int) -> History:
    return History(
        (_event_from_obj(obj) for obj in record["events"]),
        n_threads=n_threads,
        stuck=bool(record.get("stuck", False)),
        divergent=bool(record.get("divergent", False)),
    )


@dataclass
class TraceFile:
    """A loaded trace: the header metadata plus the histories, in order."""

    n_threads: int
    subject: str | None = None
    test: dict | None = None  #: serialized FiniteTest (checkpoint format)
    histories: list[History] = field(default_factory=list)
    #: per-history verdict annotations ("FAIL"/...), None when absent.
    verdicts: list[str | None] = field(default_factory=list)
    #: True when the final line was truncated (interrupted writer).
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.histories)


class TraceWriter:
    """Append histories to a JSONL trace file, one flushed line each.

    The header is written on open; ``write`` appends one record.  Usable
    as a context manager.  Opening an existing path truncates it — a
    trace describes one (subject, test) run.
    """

    def __init__(
        self,
        path: str,
        n_threads: int,
        *,
        subject: str | None = None,
        test: dict | None = None,
    ) -> None:
        self.path = path
        self.count = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle: IO[str] | None = open(path, "w", encoding="utf-8")
        header: dict[str, Any] = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "n_threads": n_threads,
        }
        if subject is not None:
            header["subject"] = subject
        if test is not None:
            header["test"] = test
        self._emit(header)

    def _emit(self, obj: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self._handle.flush()

    def write(self, history: History, verdict: str | None = None) -> None:
        self._emit(history_to_record(history, verdict))
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_trace(path: str) -> TraceFile:
    """Read a trace file; raises :class:`TraceError` on anything malformed.

    A truncated final line (the writer died mid-record) is tolerated and
    flagged via ``TraceFile.truncated`` — every complete record before it
    is returned.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path!r}: {exc}") from exc
    if not lines:
        raise TraceError(f"trace file {path!r} is empty (no header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceError(f"trace file {path!r} has a corrupt header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceError(
            f"not a trace file: format is {header.get('format')!r} "
            f"(expected {TRACE_FORMAT!r})"
            if isinstance(header, dict)
            else f"trace file {path!r} has a malformed header"
        )
    version = header.get("version")
    if version != TRACE_VERSION:
        raise TraceError(
            f"trace file version {version!r} is not supported "
            f"(this reader understands version {TRACE_VERSION})"
        )
    try:
        n_threads = int(header["n_threads"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(
            f"trace file {path!r} header lacks a valid n_threads"
        ) from exc

    trace = TraceFile(
        n_threads=n_threads,
        subject=header.get("subject"),
        test=header.get("test"),
    )
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        last = number == len(lines)
        try:
            record = json.loads(line)
            history = record_to_history(record, n_threads)
        except json.JSONDecodeError:
            if last:
                trace.truncated = True
                break
            raise TraceError(
                f"trace file {path!r} line {number} is corrupt"
            ) from None
        except (KeyError, TypeError, ValueError, SyntaxError) as exc:
            raise TraceError(
                f"trace file {path!r} line {number} is malformed: {exc}"
            ) from None
        trace.histories.append(history)
        trace.verdicts.append(record.get("verdict"))
    return trace


def default_trace_path(directory: str, subject: str, test: dict) -> str:
    """Deterministic trace path for one (subject, test) pair.

    Both the worker dumping the trace and the supervisor writing the
    crash report that references it derive the same name from the same
    inputs: a sanitized subject plus a content hash of the test.
    """
    digest = hashlib.sha1(
        json.dumps({"subject": subject, "test": test}, sort_keys=True).encode()
    ).hexdigest()[:12]
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in subject)
    return os.path.join(directory, f"{safe}-{digest}.trace.jsonl")
