"""The Wing–Gong–Lowe linearization search against an explicit model.

Given one concurrent :class:`~repro.core.history.History` and a
:class:`~repro.monitor.models.SequentialModel`, decide whether some
linearization of the history is an execution of the model:

* a total order of the operations extending the precedence order ``<H``
  and respecting per-thread program order (both are implied by choosing,
  at every step, only *minimal* operations — ones no unlinearized
  operation precedes), in which
* every completed operation's observed response equals the model's, and
* pending operations either take effect at some point (with whatever
  response the model computes — it was never observed) or not at all.

The search is the classical WGL depth-first enumeration with the
**configuration cache**: a configuration is the pair ``(set of
linearized operations, model state)``, and a configuration that failed
once fails always, so each is explored at most once.  The cache is what
turns the factorial naive search into one bounded by the number of
reachable configurations — and is why model states must be hashable.

``check_stuck_history_model`` is the blocking-aware complement (the
monitor's analogue of the paper's Definition 2): each pending operation
``e`` of a stuck history needs a reachable configuration, with all
completed operations of ``H[e]`` linearized, in which the model *blocks*
on ``e``'s invocation — the justification that ``e`` is allowed to hang
there.  For total models (queue, dict, …) nothing ever blocks, so every
stuck history is a violation, which is exactly the missed-wakeup /
deadlock check.

On failure the search reports the deepest linearizable prefix it found
and the frontier it got stuck at — the minimal counterexample rendered
by :func:`repro.core.explain.diagnose_monitor_failure`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.events import Operation, Response
from repro.core.history import History
from repro.monitor.models import SequentialModel

__all__ = [
    "MonitorCounterexample",
    "MonitorLimitError",
    "MonitorResult",
    "StuckMonitorResult",
    "check_stuck_history_model",
    "wgl_check",
]


class MonitorLimitError(Exception):
    """The configuration cap was hit before the search concluded."""


@dataclass(frozen=True)
class MonitorCounterexample:
    """Why no linearization exists: the deepest failure the search saw.

    ``prefix`` is the longest linearizable prefix found — pairs of
    (operation, the response the model gave there).  ``frontier`` lists
    the minimal operations available after that prefix, each with the
    response the model *would* produce (None when it blocks) — for a
    completed operation, disagreeing with the observed response is the
    reason that branch died.
    """

    prefix: tuple[tuple[Operation, Response], ...]
    frontier: tuple[tuple[Operation, Response | None], ...]
    state: Any
    #: set by the specialized checkers: the violated axiom, in words.
    reason: str | None = None

    def describe(self) -> str:
        lines: list[str] = []
        if self.reason is not None:
            lines.append(self.reason)
        if self.prefix or self.frontier:
            placed = ", ".join(str(op) for op, _resp in self.prefix) or "(empty)"
            lines.append(f"deepest linearizable prefix: {placed}")
            for op, expected in self.frontier:
                want = "block" if expected is None else str(expected)
                got = "blocked" if op.response is None else str(op.response)
                lines.append(f"  next {op}: model would {want}, observed {got}")
        return "\n".join(lines)


@dataclass(frozen=True)
class MonitorResult:
    """Verdict of one history against one model."""

    ok: bool
    engine: str  #: "wgl", "compositional", or "specialized"
    configurations: int  #: configurations explored (the cache size)
    witness: tuple[tuple[Operation, Response], ...] | None = None
    counterexample: MonitorCounterexample | None = None
    #: for compositional verdicts: the cell the verdict came from.
    cell: Any = None


@dataclass(frozen=True)
class StuckMonitorResult:
    """Blocking check of a stuck history: the first unjustified pending op."""

    failed: Operation | None
    configurations: int = 0

    @property
    def ok(self) -> bool:
        return self.failed is None


def _predecessors(ops: tuple[Operation, ...]) -> dict[tuple[int, int], frozenset]:
    """For each operation, the keys of the operations that ``<H`` it.

    Program order is a special case: earlier ops of the same thread
    return before later ones are called, so it is already contained in
    ``<H`` for well-formed histories.
    """
    preds: dict[tuple[int, int], frozenset] = {}
    for b in ops:
        before = frozenset(
            a.key
            for a in ops
            if a.return_pos is not None and a.return_pos < b.call_pos
        )
        preds[b.key] = before
    return preds


def wgl_check(
    history: History,
    model: SequentialModel,
    *,
    max_configurations: int | None = None,
    engine: str = "wgl",
) -> MonitorResult:
    """Decide whether *history* linearizes to an execution of *model*."""
    ops = history.operations
    preds = _predecessors(ops)
    complete_keys = frozenset(op.key for op in ops if op.complete)
    initial = model.initial_state()
    if not complete_keys and not any(op.pending for op in ops):
        return MonitorResult(ok=True, engine=engine, configurations=1, witness=())

    seen: set[tuple[frozenset, Any]] = set()
    # Each frame: (linearized keys, model state, prefix of (op, response)).
    stack: list[tuple[frozenset, Any, tuple]] = [(frozenset(), initial, ())]
    best: tuple = ()
    best_state: Any = initial
    best_linearized: frozenset = frozenset()
    while stack:
        linearized, state, prefix = stack.pop()
        key = (linearized, state)
        if key in seen:
            continue
        seen.add(key)
        if max_configurations is not None and len(seen) > max_configurations:
            raise MonitorLimitError(
                f"linearization search exceeded {max_configurations} "
                "configurations"
            )
        if complete_keys <= linearized:
            return MonitorResult(
                ok=True,
                engine=engine,
                configurations=len(seen),
                witness=prefix,
            )
        if len(prefix) > len(best) or not seen - {key}:
            best, best_state, best_linearized = prefix, state, linearized
        for op in ops:
            if op.key in linearized or not preds[op.key] <= linearized:
                continue
            new_state, response = model.apply(state, op.invocation)
            if response is None:
                continue  # the model blocks here; this op cannot take effect
            if op.complete and response != op.response:
                continue  # observed response contradicts the model
            stack.append(
                (linearized | {op.key}, new_state, prefix + ((op, response),))
            )
    frontier = tuple(
        (op, model.apply(best_state, op.invocation)[1])
        for op in ops
        if op.key not in best_linearized and preds[op.key] <= best_linearized
    )
    return MonitorResult(
        ok=False,
        engine=engine,
        configurations=len(seen),
        counterexample=MonitorCounterexample(
            prefix=best, frontier=frontier, state=best_state
        ),
    )


def check_stuck_history_model(
    history: History,
    model: SequentialModel,
    *,
    max_configurations: int | None = None,
) -> StuckMonitorResult:
    """Blocking check: every pending op needs a configuration that blocks it.

    The monitor analogue of Definition 2: for each pending operation
    ``e``, search the projected history ``H[e]`` for a linearization of
    all *completed* operations after which ``model.apply`` blocks on
    ``e``'s invocation.  The first pending operation without one is the
    violation.
    """
    total = 0
    for pending in history.pending_operations:
        projected = history.project_pending(pending)
        found, configurations = _blocks_somewhere(
            projected, pending, model, max_configurations
        )
        total += configurations
        if not found:
            return StuckMonitorResult(failed=pending, configurations=total)
    return StuckMonitorResult(failed=None, configurations=total)


def _blocks_somewhere(
    projected: History,
    pending: Operation,
    model: SequentialModel,
    max_configurations: int | None,
) -> tuple[bool, int]:
    """Whether some full linearization of *projected*'s completed ops
    reaches a state in which *pending*'s invocation blocks."""
    ops = projected.complete_operations
    preds = _predecessors(projected.operations)
    target = frozenset(op.key for op in ops)
    seen: set[tuple[frozenset, Any]] = set()
    stack: list[tuple[frozenset, Any]] = [(frozenset(), model.initial_state())]
    while stack:
        linearized, state = stack.pop()
        key = (linearized, state)
        if key in seen:
            continue
        seen.add(key)
        if max_configurations is not None and len(seen) > max_configurations:
            raise MonitorLimitError(
                f"blocking search exceeded {max_configurations} configurations"
            )
        if linearized == target:
            _state, response = model.apply(state, pending.invocation)
            if response is None:
                return True, len(seen)
            continue
        for op in ops:
            if op.key in linearized or not preds[op.key] <= linearized:
                continue
            new_state, response = model.apply(state, op.invocation)
            if response is None or response != op.response:
                continue
            stack.append((linearized | {op.key}, new_state))
    return False, len(seen)
