"""P-compositionality: monitor a history one cell at a time.

Horn & Kroening's observation (PAPERS.md): for types whose semantics
decomposes per key (maps) or per element (sets), a history is
linearizable iff each per-key projection is.  Checking k cells of n/k
operations each is exponentially cheaper than one cell of n — the WGL
configuration space multiplies across independent keys, the partition
splits it back apart.

The partitioning is delegated to the model:
:meth:`~repro.monitor.models.SequentialModel.partition_key` maps an
invocation to its cell, or ``None`` for a whole-object operation
(``Count``, ``Clear``, ``ToArray``, …).  Any ``None`` anywhere — or a
model that is not ``partitionable`` at all — forces the sound fallback:
one whole-history WGL run.

Each cell is re-checked with plain :func:`~repro.monitor.wgl.wgl_check`
on the projected sub-history (event positions keep their global values,
so the precedence order ``<H`` restricted to the cell is exactly the
global one).  A failing cell's counterexample is reported with the cell
attached so the user sees *which* key broke.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.events import Event
from repro.core.history import History
from repro.monitor.models import SequentialModel
from repro.monitor.wgl import MonitorResult, wgl_check

__all__ = ["compositional_check", "partition_history"]


def partition_history(
    history: History, model: SequentialModel
) -> dict[Hashable, History] | None:
    """Split *history* into per-cell sub-histories, or None when unsound.

    Returns ``None`` when the model is not partitionable or any
    operation is a global one (``partition_key`` → None): in either case
    only a whole-history check is sound.  Event positions are preserved
    (cells are built from the original event list, filtered), so the
    real-time precedence inside each cell matches the global history.
    """
    if not model.partitionable:
        return None
    cell_of: dict[tuple[int, int], Hashable] = {}
    for op in history.operations:
        cell = model.partition_key(op.invocation)
        if cell is None:
            return None
        cell_of[op.key] = cell
    cells: dict[Hashable, list[Event]] = {}
    for event in history.events:
        cells.setdefault(cell_of[(event.thread, event.op_index)], []).append(
            event
        )
    return {
        cell: History(
            events,
            n_threads=history.n_threads,
            stuck=history.stuck,
            divergent=history.divergent,
        )
        for cell, events in cells.items()
    }


def compositional_check(
    history: History,
    model: SequentialModel,
    *,
    max_configurations: int | None = None,
) -> MonitorResult:
    """Check *history* cell-by-cell, falling back to whole-history WGL."""
    cells = partition_history(history, model)
    if cells is None:
        return wgl_check(
            history, model, max_configurations=max_configurations
        )
    total = 0
    witness_parts: list[tuple] = []
    failed: tuple[Any, MonitorResult] | None = None
    for cell, sub in sorted(cells.items(), key=lambda item: repr(item[0])):
        result = wgl_check(
            sub, model, max_configurations=max_configurations,
            engine="compositional",
        )
        total += result.configurations
        if not result.ok:
            failed = (cell, result)
            break
        witness_parts.extend(result.witness or ())
    if failed is not None:
        cell, result = failed
        return MonitorResult(
            ok=False,
            engine="compositional",
            configurations=total,
            counterexample=result.counterexample,
            cell=cell,
        )
    # Per-cell witnesses concatenated: not a single global linearization,
    # but each cell's order is valid and cells are independent.
    return MonitorResult(
        ok=True,
        engine="compositional",
        configurations=total,
        witness=tuple(witness_parts),
    )
