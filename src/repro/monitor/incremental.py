"""Incremental (online) linearizability checking with prefix retirement.

The offline Wing–Gong–Lowe search (:mod:`repro.monitor.wgl`) needs the
whole history up front and explores configurations ``(linearized set,
state)`` over *all* of it, so both its memory and its per-verdict latency
grow with trace length.  This module is the streaming refactor of the
same search, after the just-in-time linearization idea used by online
monitors (PAPERS.md: "Efficient Linearizability Monitoring"): consume
events one at a time and keep only the *frontier* — configurations over
the operations that are still concurrent — retiring every linearized
prefix into the model state.

The invariant.  At any point of the stream, :class:`IncrementalChecker`
holds the set of configurations

    ``(model state, {(pending op, response the model gave it)})``

reachable by some linearization of the consumed prefix in which **every
returned operation is linearized with its observed response**.  Calls
just open an operation.  Returns do all the work: when operation ``o``
returns with response ``r``, every configuration must linearize ``o`` —
possibly after first linearizing other still-open operations in some
order (the closure below enumerates those orders) — and the response the
model computes for ``o`` must equal ``r``.  Configurations that cannot
are dropped; an empty set is a proof that the consumed prefix (hence any
extension of it) is not linearizable, which is what makes an online FAIL
sound the moment it is reported.

**Retirement** is what bounds memory.  After ``o``'s return is
processed, ``o`` is linearized in *every* surviving configuration, so
its identity carries no more information — only its effect on the model
state does.  It is therefore deleted from every configuration (its
effect stays folded into the state) and counted into the retired prefix.
Configurations thus mention only operations that are open (called,
unreturned) — the concurrency window — so memory is bounded by the
window's width, never by trace length.  Laziness keeps this complete:
an open operation the witness linearizes early can always be linearized
later instead, at the next return's closure, reaching the same state in
the same order.

Operations that will never return (the live recorder's *indeterminate*
ops) stay open forever and simply remain linearizable at any future
point — or never — exactly the open-history semantics of
:func:`repro.monitor.wgl.wgl_check`; each costs at most one extra
bifurcation per configuration, so memory stays bounded by (window +
indeterminate count).

``max_configurations`` caps the *cumulative* closure work, mirroring the
offline cap: exceeding it raises
:class:`~repro.monitor.wgl.MonitorLimitError` and the caller reports
EXHAUSTED, never a guess.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.core.events import Invocation, Response
from repro.monitor.models import SequentialModel
from repro.monitor.wgl import MonitorLimitError

__all__ = [
    "IncrementalChecker",
    "OnlineCounterexample",
    "OnlineResult",
    "StreamStateError",
]


class StreamStateError(Exception):
    """The event stream violated well-formedness (duplicate call, ...)."""


@dataclass(frozen=True)
class OnlineCounterexample:
    """Why the stream stopped being linearizable, at the failing return.

    ``thread``/``op_index``/``invocation``/``observed`` identify the
    returning operation whose response no configuration could justify.
    ``candidates`` samples what the surviving configurations *could*
    offer instead: pairs of (model state, response the model computes
    for the invocation there — None when it blocks, or the response the
    configuration had already committed to when it linearized the
    operation earlier).  ``retired`` is the length of the linearized
    prefix already proven and retired before the failure.
    """

    thread: int
    op_index: int
    invocation: Invocation
    observed: Response
    candidates: tuple[tuple[Any, Response | None], ...]
    retired: int
    events_ingested: int

    def describe(self) -> str:
        lines = [
            f"operation [{self.invocation} @T{self.thread}] returned "
            f"{self.observed}, but no linearization allows it "
            f"(after {self.retired} retired operations, "
            f"{self.events_ingested} events)",
        ]
        for state, response in self.candidates[:4]:
            want = "block" if response is None else str(response)
            lines.append(f"  in state {state!r} the model would {want}")
        return "\n".join(lines)


@dataclass(frozen=True)
class OnlineResult:
    """Verdict of one (possibly still growing) stream against one model."""

    ok: bool
    engine: str  #: always "incremental"
    configurations: int  #: cumulative closure configurations explored
    retired: int  #: operations linearized everywhere and retired
    frontier: int  #: operations still open when the verdict was taken
    counterexample: OnlineCounterexample | None = None


@dataclass
class _OpenOp:
    """One called-but-unreturned operation of the stream."""

    invocation: Invocation
    call_event: int  #: ingest index of the call event (lag accounting)
    indeterminate: bool = False


class IncrementalChecker:
    """Online WGL over one cell of a trace: feed events, read verdicts.

    The feeding protocol mirrors the v2 live-trace event kinds:
    :meth:`on_call`, :meth:`on_return`, :meth:`on_indeterminate`.
    ``on_return`` returns ``False`` the moment linearizability is lost —
    the verdict is final from then on (``failed`` stays set and further
    events are rejected).  :meth:`result` snapshots the current verdict
    at any point; a stream with a non-empty configuration set is
    linearizable so far.
    """

    engine = "incremental"

    def __init__(
        self,
        model: SequentialModel,
        *,
        max_configurations: int | None = None,
    ) -> None:
        self.model = model
        self.max_configurations = max_configurations
        #: configurations: (state, frozenset of (key, Response)) for
        #: linearized-but-unreturned (open or indeterminate) operations.
        self._configs: set[tuple[Hashable, frozenset]] = {
            (model.initial_state(), frozenset())
        }
        self._open: dict[tuple[int, int], _OpenOp] = {}
        self.configurations = 0  #: cumulative closure work (EXHAUSTED cap)
        self.retired = 0
        self.events_ingested = 0
        self.failed: OnlineCounterexample | None = None
        #: high-water marks for the observability layer.
        self.max_frontier = 0
        self.max_live_configs = 1
        self.max_retirement_lag = 0

    # -- observability ----------------------------------------------------

    @property
    def frontier_size(self) -> int:
        """Open (unretired) operations — the concurrency window."""
        return len(self._open)

    @property
    def live_configs(self) -> int:
        """Configurations currently held (the memory driver)."""
        return len(self._configs)

    def oldest_open_age(self) -> int:
        """Events since the oldest unretired operation was called."""
        if not self._open:
            return 0
        oldest = min(op.call_event for op in self._open.values())
        return self.events_ingested - oldest

    # -- the feeding protocol ---------------------------------------------

    def _reject_after_failure(self) -> None:
        if self.failed is not None:
            raise StreamStateError(
                "stream already failed; no further events are accepted"
            )

    def on_call(
        self, thread: int, op_index: int, invocation: Invocation
    ) -> None:
        self._reject_after_failure()
        key = (thread, op_index)
        if key in self._open:
            raise StreamStateError(f"duplicate call for operation {key}")
        self.events_ingested += 1
        self._open[key] = _OpenOp(invocation, self.events_ingested)
        self.max_frontier = max(self.max_frontier, len(self._open))

    def on_indeterminate(self, thread: int, op_index: int) -> None:
        """The operation will never return; it stays open forever."""
        self._reject_after_failure()
        key = (thread, op_index)
        if key not in self._open:
            raise StreamStateError(
                f"indeterminate marker for operation {key} with no open call"
            )
        self.events_ingested += 1
        self._open[key].indeterminate = True

    def on_return(
        self, thread: int, op_index: int, observed: Response
    ) -> bool:
        """Force-linearize the returning op; False = linearizability lost."""
        self._reject_after_failure()
        key = (thread, op_index)
        open_op = self._open.get(key)
        if open_op is None:
            raise StreamStateError(
                f"return for operation {key} with no open call"
            )
        self.events_ingested += 1

        accepted: set[tuple[Hashable, frozenset]] = set()
        explored: set[tuple[Hashable, frozenset]] = set()
        candidates: list[tuple[Any, Response | None]] = []
        stack = list(self._configs)
        while stack:
            config = stack.pop()
            if config in explored:
                continue
            explored.add(config)
            self.configurations += 1
            if (
                self.max_configurations is not None
                and self.configurations > self.max_configurations
            ):
                raise MonitorLimitError(
                    f"incremental check exceeded {self.max_configurations} "
                    "configurations"
                )
            state, linmap = config
            committed = None
            for k, resp in linmap:
                if k == key:
                    committed = resp
                    break
            if committed is not None:
                # The op was linearized during an earlier closure with a
                # model-computed response; now the observation arrived.
                if committed == observed:
                    accepted.add((state, linmap - {(key, committed)}))
                elif len(candidates) < 8:
                    candidates.append((state, committed))
                continue  # either way, nothing more to expand here
            linearized_keys = {k for k, _ in linmap}
            # Try the returning op directly from this configuration.
            new_state, response = self.model.apply(state, open_op.invocation)
            if response == observed:
                accepted.add((new_state, linmap))
            elif len(candidates) < 8:
                candidates.append((state, response))
            # Or first linearize some other still-open operation.
            for other_key, other in self._open.items():
                if other_key == key or other_key in linearized_keys:
                    continue
                other_state, other_resp = self.model.apply(
                    state, other.invocation
                )
                if other_resp is None:
                    continue  # the model blocks here
                stack.append(
                    (other_state, linmap | {(other_key, other_resp)})
                )

        lag = self.events_ingested - open_op.call_event
        self.max_retirement_lag = max(self.max_retirement_lag, lag)
        del self._open[key]
        self._configs = accepted
        self.max_live_configs = max(self.max_live_configs, len(accepted))
        if not accepted:
            self.failed = OnlineCounterexample(
                thread=thread,
                op_index=op_index,
                invocation=open_op.invocation,
                observed=observed,
                candidates=tuple(candidates),
                retired=self.retired,
                events_ingested=self.events_ingested,
            )
            return False
        self.retired += 1
        return True

    # -- verdicts ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.failed is None

    def result(self) -> OnlineResult:
        """Snapshot the verdict for the stream consumed so far."""
        return OnlineResult(
            ok=self.failed is None,
            engine=self.engine,
            configurations=self.configurations,
            retired=self.retired,
            frontier=len(self._open),
            counterexample=self.failed,
        )
