"""Standalone linearizability monitoring engine (model-based checking).

The complement of the two-phase check: when an explicit sequential model
is known, a concurrent history is checked directly against it — no
serial-enumeration phase, no :class:`~repro.core.spec.ObservationSet`.

Engines, fastest-applicable first:

* :mod:`repro.monitor.specialized` — log-linear decrease-and-conquer
  checkers for unambiguous queue/register/set histories.
* :mod:`repro.monitor.compositional` — P-compositionality: partition a
  history per key/element and monitor each (much smaller) cell.
* :mod:`repro.monitor.wgl` — the general Wing–Gong–Lowe search with the
  memoized configuration cache; always applicable.

:func:`check_history_against_model` dispatches between them, and
:mod:`repro.monitor.trace` is the offline JSONL trace format the
``lineup monitor`` subcommand reads.
"""

from repro.monitor.compositional import compositional_check
from repro.monitor.dispatch import (
    ENGINES,
    MonitorVerdict,
    check_history_against_model,
    monitor_history,
)
from repro.monitor.models import (
    MODELS,
    ModelError,
    SequentialModel,
    get_model,
    model_names,
)
from repro.monitor.specialized import specialized_check
from repro.monitor.incremental import (
    IncrementalChecker,
    OnlineCounterexample,
    OnlineResult,
)
from repro.monitor.trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TRACE_VERSION_LIVE,
    LiveTraceMeta,
    LiveTraceWriter,
    TraceError,
    TraceScan,
    TraceSegment,
    TraceWriter,
    default_trace_path,
    iter_trace,
    load_trace,
    scan_trace,
)
from repro.monitor.wgl import (
    MonitorCounterexample,
    MonitorLimitError,
    MonitorResult,
    StuckMonitorResult,
    check_stuck_history_model,
    wgl_check,
)

__all__ = [
    "ENGINES",
    "IncrementalChecker",
    "MODELS",
    "ModelError",
    "MonitorVerdict",
    "monitor_history",
    "MonitorCounterexample",
    "MonitorLimitError",
    "MonitorResult",
    "OnlineCounterexample",
    "OnlineResult",
    "SequentialModel",
    "StuckMonitorResult",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TRACE_VERSION_LIVE",
    "LiveTraceMeta",
    "LiveTraceWriter",
    "TraceError",
    "TraceScan",
    "TraceSegment",
    "TraceWriter",
    "check_history_against_model",
    "check_stuck_history_model",
    "compositional_check",
    "default_trace_path",
    "get_model",
    "iter_trace",
    "load_trace",
    "model_names",
    "scan_trace",
    "specialized_check",
    "wgl_check",
]
