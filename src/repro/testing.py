"""pytest-friendly assertion helpers for checking your own structures.

The thinnest possible on-ramp: wrap your factory and alphabet in one
assertion inside an ordinary test.

    from repro.testing import assert_linearizable
    from repro import Invocation

    def test_my_set_is_linearizable():
        assert_linearizable(
            MySet,
            [Invocation("AddIfAbsent", (1,)), Invocation("Remove", (1,)),
             Invocation("Size")],
            rows=2, cols=2, samples=20,
        )

On failure the assertion message carries the full Line-Up report — the
test matrix, the violating interleaving (with timeline), the matching
serial histories and the diagnosis — so CI logs are self-contained.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core import (
    CheckConfig,
    CheckResult,
    FiniteTest,
    Invocation,
    SystemUnderTest,
    check,
    random_check,
    render_check_result,
)
from repro.runtime import Runtime, Scheduler

__all__ = [
    "assert_linearizable",
    "assert_not_linearizable",
    "assert_test_passes",
    "assert_test_fails",
]


def _subject(factory: Callable[[Runtime], Any], name: str | None) -> SystemUnderTest:
    return SystemUnderTest(factory, name or getattr(factory, "__name__", "subject"))


def assert_linearizable(
    factory: Callable[[Runtime], Any],
    invocations: Sequence[Invocation],
    rows: int = 2,
    cols: int = 2,
    samples: int = 20,
    seed: int = 0,
    config: CheckConfig | None = None,
    name: str | None = None,
    scheduler: Scheduler | None = None,
) -> None:
    """Assert a RandomCheck campaign finds no violation.

    A passing assertion covers the sampled tests only (the paper's
    restricted soundness); a failing one is a *proof* of
    non-linearizability, included in the assertion message.
    """
    campaign = random_check(
        _subject(factory, name),
        list(invocations),
        rows=rows,
        cols=cols,
        samples=samples,
        seed=seed,
        config=config,
        stop_at_first_failure=True,
        scheduler=scheduler,
    )
    if campaign.first_failure is not None:
        raise AssertionError(
            "not deterministically linearizable:\n"
            + render_check_result(campaign.first_failure)
        )


def assert_not_linearizable(
    factory: Callable[[Runtime], Any],
    invocations: Sequence[Invocation],
    rows: int = 2,
    cols: int = 2,
    samples: int = 20,
    seed: int = 0,
    config: CheckConfig | None = None,
    name: str | None = None,
    scheduler: Scheduler | None = None,
) -> CheckResult:
    """Assert the campaign *does* find a violation; returns its result.

    Useful for pinning known bugs (regression tests for your bug fixes
    work the other way around: `assert_linearizable` after the fix).
    """
    campaign = random_check(
        _subject(factory, name),
        list(invocations),
        rows=rows,
        cols=cols,
        samples=samples,
        seed=seed,
        config=config,
        stop_at_first_failure=True,
        scheduler=scheduler,
    )
    if campaign.first_failure is None:
        raise AssertionError(
            f"expected a linearizability violation, but {campaign.tests_run} "
            f"random {rows}x{cols} tests passed"
        )
    return campaign.first_failure


def assert_test_passes(
    factory: Callable[[Runtime], Any],
    test: FiniteTest,
    config: CheckConfig | None = None,
    name: str | None = None,
    scheduler: Scheduler | None = None,
) -> None:
    """Assert one specific finite test passes the two-phase check."""
    result = check(_subject(factory, name), test, config, scheduler=scheduler)
    if result.failed:
        raise AssertionError(
            "test failed the linearizability check:\n"
            + render_check_result(result)
        )


def assert_test_fails(
    factory: Callable[[Runtime], Any],
    test: FiniteTest,
    config: CheckConfig | None = None,
    name: str | None = None,
    scheduler: Scheduler | None = None,
) -> CheckResult:
    """Assert one specific finite test fails; returns the result."""
    result = check(_subject(factory, name), test, config, scheduler=scheduler)
    if result.passed:
        raise AssertionError(f"expected {test} to fail, but it passed")
    return result
