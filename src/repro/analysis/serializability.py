"""Conflict-serializability monitoring (paper Section 5.6).

The paper implemented the atomicity checker of Farzan & Madhusudan
("Monitoring atomicity in concurrent programs", CAV 2008), which decides
whether one dynamic execution is *conflict-serializable* when each
operation of the test is treated as a transaction.  This module is that
monitor for our runtime:

* each operation (delimited by the harness's :class:`OpMark` records) is
  a transaction;
* two accesses conflict when they touch the same location and at least
  one writes (lock acquire/release and CAS count as writes to the lock /
  cell location);
* the execution is conflict-serializable iff the transaction conflict
  graph — an edge T1 → T2 whenever some access of T1 precedes a
  conflicting access of T2 — is acyclic.

The paper's experience: this check produced *hundreds of warnings on
correct code* (CAS retry loops, double-checked timing optimizations,
comparison right-movers, lazy initialization), which is why they argue
linearizability is the better thread-safety oracle.  The Section 5.6
benchmark reproduces that false-alarm gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.harness import OpMark
from repro.runtime import AccessRecord

__all__ = ["SerializabilityReport", "check_conflict_serializability"]

#: Transaction id: (thread, per-thread operation index).
TxnId = tuple[int, int]


@dataclass(frozen=True)
class SerializabilityReport:
    """Outcome of the conflict-serializability check on one execution."""

    serializable: bool
    #: a cycle in the conflict graph (list of transaction ids), or ().
    cycle: tuple[TxnId, ...] = ()
    transactions: int = 0
    conflict_edges: int = 0

    def describe(self) -> str:
        if self.serializable:
            return "conflict-serializable"
        path = " -> ".join(f"T{t}#{i}" for t, i in self.cycle)
        return f"NOT conflict-serializable; cycle: {path}"


def _conflicts(a: AccessRecord, b: AccessRecord) -> bool:
    # uid disambiguates instances whose per-execution location ids
    # collide (shared pre-allocated vs factory-allocated cells).
    if (a.uid or a.location) != (b.uid or b.location):
        return False
    writes = ("write", "cas-ok", "acquire", "release")
    return a.kind in writes or b.kind in writes


def check_conflict_serializability(accesses: Iterable) -> SerializabilityReport:
    """Check one execution's access log (with OpMark delimiters)."""
    # 1. Attribute accesses to transactions.
    current: dict[int, TxnId] = {}
    txn_accesses: list[tuple[TxnId, AccessRecord]] = []
    order: list[TxnId] = []
    for record in accesses:
        if isinstance(record, OpMark):
            if record.kind == "begin":
                txn = (record.thread, record.op_index)
                current[record.thread] = txn
                order.append(txn)
            else:
                current.pop(record.thread, None)
        elif isinstance(record, AccessRecord):
            txn = current.get(record.thread)
            if txn is not None:  # accesses outside operations are ignored
                txn_accesses.append((txn, record))

    # 2. Build the conflict graph.
    edges: dict[TxnId, set[TxnId]] = {txn: set() for txn in order}
    edge_count = 0
    for i, (txn_a, access_a) in enumerate(txn_accesses):
        for txn_b, access_b in txn_accesses[i + 1 :]:
            if txn_a == txn_b or not _conflicts(access_a, access_b):
                continue
            if txn_b not in edges[txn_a]:
                edges[txn_a].add(txn_b)
                edge_count += 1
    # Program order within a thread is also a serialization constraint.
    by_thread: dict[int, list[TxnId]] = {}
    for txn in order:
        by_thread.setdefault(txn[0], []).append(txn)
    for txns in by_thread.values():
        for earlier, later in zip(txns, txns[1:]):
            if later not in edges[earlier]:
                edges[earlier].add(later)
                edge_count += 1

    # 3. Cycle detection (iterative DFS, three-colour).
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {txn: WHITE for txn in edges}
    parent: dict[TxnId, TxnId | None] = {}

    def found_cycle(start: TxnId) -> tuple[TxnId, ...] | None:
        stack: list[tuple[TxnId, Iterable[TxnId]]] = [(start, iter(sorted(edges[start])))]
        colour[start] = GREY
        parent[start] = None
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if colour[succ] == GREY:
                    # reconstruct the cycle succ ... node
                    cycle = [node]
                    walk = node
                    while walk != succ:
                        walk = parent[walk]  # type: ignore[assignment]
                        cycle.append(walk)
                    cycle.reverse()
                    return tuple(cycle)
                if colour[succ] == WHITE:
                    colour[succ] = GREY
                    parent[succ] = node
                    stack.append((succ, iter(sorted(edges[succ]))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
        return None

    for txn in edges:
        if colour[txn] == WHITE:
            cycle = found_cycle(txn)
            if cycle is not None:
                return SerializabilityReport(
                    serializable=False,
                    cycle=cycle,
                    transactions=len(edges),
                    conflict_edges=edge_count,
                )
    return SerializabilityReport(
        serializable=True, transactions=len(edges), conflict_edges=edge_count
    )
