"""Comparison checkers (paper Section 5.6).

To test the choice of linearizability as the thread-safety oracle, the
paper runs two alternative dynamic checkers over the same executions:

* :mod:`.race_detector` — the happens-before data race detector (all
  races found in the .NET classes were benign), and
* :mod:`.serializability` — conflict-serializability ("atomicity")
  monitoring, which produced hundreds of false alarms on correct code.

Both operate on the access logs the runtime records during exploration.
"""

from repro.analysis.lock_order import LockOrderAnalyzer, LockOrderReport
from repro.analysis.race_detector import Race, RaceDetector, detect_races
from repro.analysis.serializability import (
    SerializabilityReport,
    check_conflict_serializability,
)
from repro.analysis.vector_clock import VectorClock

__all__ = [
    "LockOrderAnalyzer",
    "LockOrderReport",
    "Race",
    "RaceDetector",
    "SerializabilityReport",
    "VectorClock",
    "check_conflict_serializability",
    "detect_races",
]
