"""Vector clocks for the happens-before race detector.

A vector clock maps thread ids to logical timestamps.  ``VC1 <= VC2``
means every component of VC1 is at most the corresponding component of
VC2 — the happens-before comparison used to decide whether two memory
accesses are ordered.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["VectorClock"]


class VectorClock:
    """An immutable-style vector clock over integer thread ids."""

    __slots__ = ("_clock",)

    def __init__(self, clock: dict[int, int] | None = None) -> None:
        self._clock: dict[int, int] = dict(clock) if clock else {}

    def get(self, thread: int) -> int:
        return self._clock.get(thread, 0)

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    def tick(self, thread: int) -> "VectorClock":
        """Return a copy with *thread*'s component incremented."""
        out = dict(self._clock)
        out[thread] = out.get(thread, 0) + 1
        return VectorClock(out)

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum (the merge on synchronization edges)."""
        out = dict(self._clock)
        for thread, stamp in other._clock.items():
            if stamp > out.get(thread, 0):
                out[thread] = stamp
        return VectorClock(out)

    def happens_before(self, other: "VectorClock") -> bool:
        """self ≤ other componentwise (and they may be equal)."""
        return all(stamp <= other.get(t) for t, stamp in self._clock.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock happens-before the other."""
        return not self.happens_before(other) and not other.happens_before(self)

    def items(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._clock.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        threads = set(self._clock) | set(other._clock)
        return all(self.get(t) == other.get(t) for t in threads)

    def __hash__(self) -> int:
        return hash(tuple(sorted((t, s) for t, s in self._clock.items() if s)))

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{s}" for t, s in sorted(self._clock.items()))
        return f"VC({inner})"
