"""Happens-before data race detection (paper Section 5.6).

The paper compares Line-Up with "the happens-before based dynamic race
detector included with CHESS".  This module is that detector for our
runtime: it replays the access log of one execution, maintaining vector
clocks per thread and per synchronization object, and reports every pair
of conflicting accesses to a *plain* (non-volatile) location that are not
ordered by happens-before.

Synchronization edges:

* lock release → later acquire of the same lock,
* volatile write (including successful CAS / exchange / add) → later
  volatile read of the same cell,
* and program order within each thread.

Because the scheduler serializes execution, the access log is a total
order; happens-before is the standard reduction over it.  The paper's
finding — the .NET classes contain only *benign* races thanks to
disciplined volatile/interlocked use — is reproduced by the Section 5.6
benchmark, which runs this detector over the same executions Line-Up
explores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.vector_clock import VectorClock
from repro.runtime import AccessRecord

__all__ = ["Race", "RaceDetector", "detect_races"]


@dataclass(frozen=True)
class Race:
    """Two unordered conflicting accesses to the same plain location."""

    location: int
    name: str
    first: AccessRecord
    second: AccessRecord

    def describe(self) -> str:
        return (
            f"race on {self.name}: thread {self.first.thread} {self.first.kind} "
            f"|| thread {self.second.thread} {self.second.kind}"
        )


class RaceDetector:
    """Streaming happens-before race detector over one access log."""

    def __init__(self) -> None:
        self._thread_vc: dict[int, VectorClock] = {}
        self._sync_vc: dict[int, VectorClock] = {}
        #: per plain location: past accesses with their clocks.
        self._history: dict[int, list[tuple[AccessRecord, VectorClock]]] = {}
        self.races: list[Race] = []

    def _vc(self, thread: int) -> VectorClock:
        if thread not in self._thread_vc:
            self._thread_vc[thread] = VectorClock().tick(thread)
        return self._thread_vc[thread]

    def feed(self, access: AccessRecord) -> None:
        """Process one access record (in execution order)."""
        thread = access.thread
        vc = self._vc(thread)
        # Key on the instance uid where available: location ids restart
        # per execution, so a shared (pre-allocated) instance can collide
        # with a factory-allocated one in the same log.
        key = access.uid or access.location
        if access.volatile:
            # Synchronization access: acquire joins the location's clock,
            # release publishes ours.  Reads acquire; writes (and lock
            # releases) release; CAS and lock acquires do both.
            loc_vc = self._sync_vc.get(key)
            if access.kind in ("read", "cas-fail", "acquire", "cas-ok") and loc_vc:
                vc = vc.join(loc_vc)
            if access.kind in ("write", "cas-ok", "release"):
                self._sync_vc[key] = vc.copy()
            self._thread_vc[thread] = vc.tick(thread)
            return
        # Plain access: check against conflicting unordered past accesses.
        past = self._history.setdefault(key, [])
        for previous, prev_vc in past:
            if previous.thread == thread:
                continue
            if not (previous.is_write or access.is_write):
                continue
            if not prev_vc.happens_before(vc):
                self.races.append(
                    Race(access.location, access.name, previous, access)
                )
        past.append((access, vc.copy()))
        self._thread_vc[thread] = vc.tick(thread)

    def feed_all(self, accesses: Iterable) -> "RaceDetector":
        for access in accesses:
            if isinstance(access, AccessRecord):
                self.feed(access)
        return self

    def distinct_locations(self) -> set[str]:
        """Names of locations involved in at least one race."""
        return {race.name for race in self.races}


def detect_races(accesses: Iterable) -> list[Race]:
    """Convenience wrapper: all races in one execution's access log."""
    return RaceDetector().feed_all(accesses).races
