"""Lock-order (deadlock-potential) analysis over explored executions.

A companion to the Section 5.6 comparison checkers: the classic
lock-order heuristic builds a graph with an edge L1 → L2 whenever some
thread acquires L2 while holding L1; a cycle means two threads can take
the locks in opposite orders — a *potential* deadlock, even if the
explored executions never actually deadlocked.

Like conflict-serializability (and unlike Line-Up), this is a heuristic
with false positives: gate-ordered acquisitions (e.g. every whole-map
operation taking the stripe locks in index order after a designated
first lock) can produce cycles that no execution can realize.  The tests
demonstrate both the true-positive and the false-positive side, which is
exactly the methodological point of the paper's comparison section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.runtime import AccessRecord

__all__ = ["LockOrderAnalyzer", "LockOrderReport"]


@dataclass(frozen=True)
class LockOrderReport:
    """Result of the lock-order analysis."""

    cycle: tuple[str, ...]  #: lock names forming a cycle, or ()
    edges: int
    locks: int

    @property
    def deadlock_potential(self) -> bool:
        return bool(self.cycle)

    def describe(self) -> str:
        if not self.cycle:
            return f"no lock-order inversions ({self.locks} locks, {self.edges} edges)"
        path = " -> ".join(self.cycle + (self.cycle[0],))
        return f"potential deadlock: {path}"


class LockOrderAnalyzer:
    """Accumulates acquire/release events across many executions."""

    def __init__(self) -> None:
        #: edges between lock instance uids, with a representative name.
        #: Keying on ``uid`` rather than ``location`` matters because the
        #: analyzer accumulates across executions: location ids restart
        #: per execution, so two distinct lock instances from different
        #: executions may share a location but never a uid.
        self._edges: dict[int, set[int]] = {}
        self._names: dict[int, str] = {}

    def feed_execution(self, accesses: Iterable) -> None:
        """Process one execution's access log."""
        held: dict[int, list[int]] = {}  # thread -> stack of lock uids
        for record in accesses:
            if not isinstance(record, AccessRecord):
                continue
            lock = record.uid or record.location
            if record.kind == "acquire":
                self._names[lock] = record.name
                stack = held.setdefault(record.thread, [])
                for outer in stack:
                    if outer != lock:
                        self._edges.setdefault(outer, set()).add(lock)
                stack.append(lock)
            elif record.kind == "release":
                stack = held.get(record.thread, [])
                if lock in stack:
                    stack.remove(lock)

    def report(self) -> LockOrderReport:
        """Check the accumulated graph for a cycle."""
        WHITE, GREY, BLACK = 0, 1, 2
        nodes = set(self._edges) | {
            succ for targets in self._edges.values() for succ in targets
        }
        colour = {node: WHITE for node in nodes}
        parent: dict[int, int | None] = {}
        edge_count = sum(len(targets) for targets in self._edges.values())

        def dfs(start: int) -> tuple[int, ...] | None:
            stack = [(start, iter(sorted(self._edges.get(start, ()))))]
            colour[start] = GREY
            parent[start] = None
            while stack:
                node, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if colour[succ] == GREY:
                        cycle = [node]
                        walk = node
                        while walk != succ:
                            walk = parent[walk]  # type: ignore[assignment]
                            cycle.append(walk)
                        cycle.reverse()
                        return tuple(cycle)
                    if colour[succ] == WHITE:
                        colour[succ] = GREY
                        parent[succ] = node
                        stack.append(
                            (succ, iter(sorted(self._edges.get(succ, ()))))
                        )
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
            return None

        for node in sorted(nodes):
            if colour[node] == WHITE:
                cycle = dfs(node)
                if cycle is not None:
                    return LockOrderReport(
                        cycle=tuple(self._names.get(l, str(l)) for l in cycle),
                        edges=edge_count,
                        locks=len(nodes),
                    )
        return LockOrderReport(cycle=(), edges=edge_count, locks=len(nodes))
