"""The in-repo reference SUT: a tiny threaded HTTP service.

Live-service checking needs something to check, and it has to run
hermetically — no external Redis, no Docker.  This module is that
service: a stdlib-only ``ThreadingHTTPServer`` exposing a counter, a
FIFO queue, and a register whose alphabets match the sequential models
of :mod:`repro.monitor.models`, in two variants:

* ``correct`` — every operation runs under one lock; the service is
  linearizable by construction.
* ``buggy`` — the counter's ``inc`` and the queue's ``Enqueue`` /
  ``TryDequeue`` perform a read-modify-write *outside* the lock with a
  deliberate sleep inside the race window, seeding classic lost-update
  and duplicate-dequeue bugs that concurrent clients hit reliably.

The wire protocol is one request per operation::

    POST /op/<Method>?a=<urlencoded repr of the args tuple>

with ``200`` + ``repr(value)`` for a normal return (parsed back with
``ast.literal_eval``, the repo-wide round-trip), ``400`` + an error name
for an invocation the service cannot interpret, and ``GET /healthz``
for liveness probes.

Run it in-process (:func:`start_server`, used by fast tests) or as a
child process (:func:`start_refsut_process` / ``python -m
repro.live.refsut``), which is what the chaos SUT-kill mode and the CLI
use — killing a process is the only honest way to simulate a service
dying mid-campaign.
"""

from __future__ import annotations

import ast
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlparse

__all__ = [
    "VARIANTS",
    "RefSutState",
    "start_server",
    "start_refsut_process",
]

VARIANTS = ("correct", "buggy")

#: Default seeded-bug race window, seconds.  Big enough that overlapping
#: clients collide reliably, small enough to keep campaigns fast.
DEFAULT_RACE_WINDOW = 0.004


class RefSutState:
    """The service's shared state plus its (possibly racy) operations."""

    def __init__(
        self, variant: str = "correct", race_window: float = DEFAULT_RACE_WINDOW
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r} (choose from {VARIANTS})"
            )
        self.variant = variant
        self.race_window = race_window
        self._lock = threading.Lock()
        self._counter = 0
        self._queue: list = []
        self._register = None

    @property
    def buggy(self) -> bool:
        return self.variant == "buggy"

    # -- counter ---------------------------------------------------------

    def op_inc(self) -> None:
        if self.buggy:
            # Seeded bug: unlocked read-modify-write.  Two overlapping
            # incs both read v and both store v+1 — a lost update.
            value = self._counter
            time.sleep(self.race_window)
            self._counter = value + 1
            return None
        with self._lock:
            self._counter += 1
        return None

    def op_get(self):
        with self._lock:
            return self._counter

    def op_set_value(self, value) -> None:
        with self._lock:
            self._counter = value
        return None

    # -- queue -----------------------------------------------------------

    def op_Enqueue(self, value) -> None:
        if self.buggy:
            # Seeded bug: copy-sleep-append-replace loses concurrent
            # enqueues (and runs unlocked against TryDequeue).
            items = list(self._queue)
            time.sleep(self.race_window)
            items.append(value)
            self._queue = items
            return None
        with self._lock:
            self._queue.append(value)
        return None

    def op_TryDequeue(self):
        if self.buggy:
            # Seeded bug: unlocked head read then unlocked tail reassign;
            # two overlapping dequeues can return the same element.
            items = self._queue
            if not items:
                return "Fail"
            head = items[0]
            time.sleep(self.race_window)
            self._queue = items[1:]
            return head
        with self._lock:
            if not self._queue:
                return "Fail"
            return self._queue.pop(0)

    # -- register --------------------------------------------------------

    def op_Write(self, value) -> None:
        with self._lock:
            self._register = value
        return None

    def op_Read(self):
        with self._lock:
            return self._register

    # -- dispatch --------------------------------------------------------

    def apply(self, method: str, args: tuple):
        handler = getattr(self, f"op_{method}", None)
        if handler is None:
            raise KeyError(method)
        return handler(*args)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"  # keep-alive: one connection per session

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the server is a test fixture; stay quiet

    def _reply(self, status: int, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _handle_op(self) -> None:
        parsed = urlparse(self.path)
        parts = parsed.path.strip("/").split("/")
        if parsed.path == "/healthz":
            self._reply(200, "ok")
            return
        if len(parts) != 2 or parts[0] != "op":
            self._reply(404, "NotFound")
            return
        method = unquote(parts[1])
        raw_args = parse_qs(parsed.query).get("a", ["()"])[0]
        try:
            args = ast.literal_eval(raw_args)
            if not isinstance(args, tuple):
                raise ValueError("args must be a tuple")
        except (ValueError, SyntaxError):
            self._reply(400, "BadArguments")
            return
        try:
            value = self.server.state.apply(method, args)  # type: ignore[attr-defined]
        except KeyError:
            self._reply(400, "UnknownMethod")
            return
        except TypeError:
            self._reply(400, "BadArity")
            return
        self._reply(200, repr(value))

    do_GET = _handle_op
    do_POST = _handle_op
    do_PUT = _handle_op


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # The chaos modes drop connections on purpose; the default traceback
    # spew would drown the campaign output.
    def handle_error(self, request, client_address) -> None:  # noqa: D102
        pass


class RefSut:
    """An in-process reference SUT: server thread + address."""

    def __init__(self, server: _Server, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread
        self.host, self.port = server.server_address[0], server.server_address[1]

    @property
    def state(self) -> RefSutState:
        return self._server.state  # type: ignore[attr-defined]

    def close(self) -> None:
        self._server.shutdown()
        self._thread.join(timeout=5)
        self._server.server_close()

    def __enter__(self) -> "RefSut":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def start_server(
    variant: str = "correct",
    *,
    port: int = 0,
    race_window: float = DEFAULT_RACE_WINDOW,
) -> RefSut:
    """Start the reference SUT in this process (fast, not killable)."""
    server = _Server(("127.0.0.1", port), _Handler)
    server.state = RefSutState(variant, race_window)  # type: ignore[attr-defined]
    thread = threading.Thread(
        target=server.serve_forever, name="refsut", daemon=True
    )
    thread.start()
    return RefSut(server, thread)


class RefSutProcess:
    """The reference SUT in a child process — killable mid-campaign."""

    def __init__(self, proc, host: str, port: int) -> None:
        self.proc = proc
        self.host = host
        self.port = port
        self.killed_deliberately = False

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL the service — the chaos ``kill`` mode.

        Waits for the process to be reaped so that :meth:`alive` is
        consistent (False) the moment this returns.
        """
        self.killed_deliberately = True
        self.proc.kill()
        try:
            self.proc.wait(timeout=5)
        except Exception:  # pragma: no cover - SIGKILL cannot be refused
            pass

    def close(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5)
            except Exception:  # pragma: no cover - last resort
                self.proc.kill()
                self.proc.wait(timeout=5)

    def __enter__(self) -> "RefSutProcess":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def start_refsut_process(
    variant: str = "correct",
    *,
    race_window: float = DEFAULT_RACE_WINDOW,
    startup_timeout: float = 10.0,
) -> RefSutProcess:
    """Spawn ``python -m repro.live.refsut`` and wait for its port line."""
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.live.refsut",
            "--variant",
            variant,
            "--race-window",
            str(race_window),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + startup_timeout
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()  # type: ignore[union-attr]
        if line.startswith("LINEUP-REFSUT PORT="):
            break
        if proc.poll() is not None:
            raise RuntimeError(
                f"reference SUT exited during startup (code {proc.returncode})"
            )
    else:  # pragma: no cover - startup timeout
        proc.kill()
        raise RuntimeError("reference SUT did not announce its port in time")
    port = int(line.strip().split("=", 1)[1])
    return RefSutProcess(proc, "127.0.0.1", port)


def main(argv=None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(description="Line-Up reference SUT")
    parser.add_argument("--variant", choices=VARIANTS, default="correct")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--race-window", type=float, default=DEFAULT_RACE_WINDOW
    )
    args = parser.parse_args(argv)
    server = _Server(("127.0.0.1", args.port), _Handler)
    server.state = RefSutState(args.variant, args.race_window)  # type: ignore[attr-defined]
    print(f"LINEUP-REFSUT PORT={server.server_address[1]}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
