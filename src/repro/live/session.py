"""Concurrent client sessions: the live campaign's worker threads.

Each :class:`Session` drives one logical client against the service:
generate an invocation from the model's workload, establish a
connection (with **jittered exponential backoff** — connection
establishment is pre-invocation and therefore safe to retry), record
the invocation, perform the call under the per-operation deadline, and
classify the outcome:

* **ok / error** — the service answered (a normal value or an
  application error); the response is recorded and the session moves
  on.
* **indeterminate** — the call failed after the request may have been
  sent (timeout, reset, injected drop/disconnect).  The operation is
  left pending, the session's logical thread is retired, and the
  session continues on a fresh thread id.  Never retried: a retry of
  an increment that *did* land would double-count it.
* **connect-exhausted** — the service could not even be reached after
  the full backoff schedule (typically: it died).  The session drains —
  it stops issuing work and reports why, and the runner uses the first
  such report to tell the *other* sessions to drain too, so a dead
  service ends the campaign in bounded time instead of hanging it.

The workloads are deliberately model-shaped (method names match
:mod:`repro.monitor.models`) and value-unique where the model's
specialized checkers want distinct values.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.core.events import Invocation
from repro.live.recorder import LiveRecorder
from repro.live.transport import (
    AmbiguousFailure,
    ConnectFailed,
    Transport,
)

__all__ = ["Session", "SessionConfig", "SessionStats", "make_workload"]


@dataclass(frozen=True)
class SessionConfig:
    """Knobs of one session's operation loop."""

    ops: int = 25
    op_timeout: float = 1.0
    #: connection attempts before the session declares the service dead.
    connect_attempts: int = 6
    backoff_base: float = 0.02  #: seconds, doubled per attempt
    backoff_cap: float = 0.5


@dataclass
class SessionStats:
    """What one session did, for the campaign report."""

    index: int
    completed: int = 0
    errors: int = 0
    indeterminate: int = 0
    connect_retries: int = 0
    #: "finished" | "drained" | "connect-exhausted"
    outcome: str = "finished"


def make_workload(model: str, session_index: int, rng: random.Random):
    """An invocation generator for *model*, unique-valued where needed."""
    counter = iter(range(10**9))

    def unique() -> int:
        # Globally unique across sessions: the specialized queue/register
        # checkers require distinct values.
        return session_index * 1_000_000 + next(counter)

    if model == "counter":
        def gen() -> Invocation:
            return (
                Invocation("inc")
                if rng.random() < 0.65
                else Invocation("get")
            )
    elif model == "queue":
        def gen() -> Invocation:
            if rng.random() < 0.6:
                return Invocation("Enqueue", (unique(),))
            return Invocation("TryDequeue")
    elif model == "register":
        def gen() -> Invocation:
            if rng.random() < 0.5:
                return Invocation("Write", (unique(),))
            return Invocation("Read")
    else:
        raise ValueError(
            f"no live workload for model {model!r} "
            "(choose counter, queue, or register)"
        )
    return gen


class Session(threading.Thread):
    """One client session: a thread looping invocations at the service."""

    def __init__(
        self,
        index: int,
        transport: Transport,
        recorder: LiveRecorder,
        workload,
        config: SessionConfig,
        drain: threading.Event,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(name=f"live-session-{index}", daemon=True)
        self.transport = transport
        self.recorder = recorder
        self.workload = workload
        self.config = config
        self.drain = drain
        self.rng = rng or random.Random(index)
        self.stats = SessionStats(index=index)

    def _connect_with_backoff(self) -> bool:
        """Pre-invocation connection with jittered exponential backoff.

        Safe to retry as often as we like: nothing has been recorded and
        no request has been sent.  Returns False when the budget is
        exhausted or a drain was requested — the session then stops.
        """
        delay = self.config.backoff_base
        for attempt in range(self.config.connect_attempts):
            try:
                self.transport.connect()
                return True
            except ConnectFailed:
                self.stats.connect_retries += 1
                if self.drain.is_set():
                    return False
                if attempt == self.config.connect_attempts - 1:
                    return False
                # Full jitter: sleep U(0, delay) — decorrelates sessions
                # hammering a restarting service.
                time.sleep(self.rng.uniform(0.0, delay))
                delay = min(delay * 2, self.config.backoff_cap)
        return False

    def run(self) -> None:
        thread = self.recorder.allocate_thread()
        try:
            for _n in range(self.config.ops):
                if self.drain.is_set():
                    self.stats.outcome = "drained"
                    return
                invocation = self.workload()
                if not self._connect_with_backoff():
                    self.stats.outcome = (
                        "drained" if self.drain.is_set() else "connect-exhausted"
                    )
                    return
                # From here on the operation is live: record the call
                # BEFORE the request can hit the wire.
                op_index = self.recorder.begin(thread, invocation)
                try:
                    response = self.transport.call(invocation)
                except AmbiguousFailure as exc:
                    # May or may not have taken effect — leave it pending
                    # forever on a retired thread; never retry it.
                    thread = self.recorder.indeterminate_op(
                        thread, op_index, exc.why
                    )
                    self.stats.indeterminate += 1
                    self.transport.reset()
                    continue
                self.recorder.commit(thread, op_index, response)
                self.stats.completed += 1
                if response.kind == "raised":
                    self.stats.errors += 1
        finally:
            self.transport.close()
