"""The wall-clock recorder: real time in, checkable history out.

Live services cannot be baton-scheduled, so the only ordering evidence
available is wall-clock time.  :class:`LiveRecorder` turns it into a
sound history:

* **Monotonic clock.**  Timestamps come from ``time.monotonic()`` —
  immune to NTP steps and wall-clock adjustments; a recording's
  timestamps are guaranteed non-decreasing.
* **Invocation-before-send, response-after-receive.**  Sessions call
  :meth:`begin` *before* handing the request to the transport and
  :meth:`commit` *after* the response arrives, so every recorded
  interval contains the operation's true effect window.  Recorded
  precedence is therefore a subset of true precedence: the checker sees
  at most the constraints that really held, which is what makes a FAIL
  verdict on a live trace a proof.
* **Logical thread retirement.**  A classical history forbids a thread
  to call again while an operation is pending.  When an operation goes
  indeterminate the session's logical thread is *retired* (its pending
  operation stays open forever, concurrent with everything after it —
  exactly the may-take-effect-anytime semantics) and the session
  continues on a freshly allocated thread id.  This is the standard
  crashed-process convention of wall-clock checkers.
* **Crash-safe appends.**  Every event is one flushed JSONL line via
  :class:`~repro.monitor.trace.LiveTraceWriter`; an interrupted
  recording is a loadable prefix, never a corrupt file.
"""

from __future__ import annotations

import threading
import time

from repro.core.events import Invocation, Response
from repro.monitor.trace import LiveTraceWriter

__all__ = ["LiveRecorder"]


class LiveRecorder:
    """Thread-safe wall-clock history recorder over a v2 live trace."""

    def __init__(
        self,
        path: str,
        sessions: int,
        *,
        subject: str | None = None,
        model: str | None = None,
        flush_every_n: int = 1,
        flush_interval: float = 0.0,
    ) -> None:
        self.path = path
        self._writer = LiveTraceWriter(
            path,
            sessions,
            subject=subject,
            model=model,
            flush_every_n=flush_every_n,
            flush_interval=flush_interval,
        )
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self._next_thread = 0
        self._op_counts: dict[int, int] = {}
        self._finalized = False
        self.completed = 0
        self.indeterminate = 0

    # -- clock -----------------------------------------------------------

    def now(self) -> float:
        """Seconds since the recording started, monotonic."""
        return time.monotonic() - self._t0

    @property
    def events(self) -> int:
        """Lines appended so far (the chaos killer's progress signal)."""
        return self._writer.events

    # -- thread allocation ----------------------------------------------

    def allocate_thread(self) -> int:
        """A fresh logical thread id (session start, or after retirement)."""
        with self._lock:
            thread = self._next_thread
            self._next_thread += 1
            self._op_counts[thread] = 0
            return thread

    # -- the recording protocol -----------------------------------------

    def begin(self, thread: int, invocation: Invocation) -> int:
        """Record the invocation; MUST be called before the request is sent."""
        with self._lock:
            op_index = self._op_counts[thread]
            self._op_counts[thread] = op_index + 1
        self._writer.record_call(thread, op_index, invocation, self.now())
        return op_index

    def commit(self, thread: int, op_index: int, response: Response) -> None:
        """Record the response; called after it was actually received."""
        self._writer.record_return(thread, op_index, response, self.now())
        with self._lock:
            self.completed += 1

    def indeterminate_op(self, thread: int, op_index: int, why: str) -> int:
        """Mark the op indeterminate, retire *thread*, return a fresh one.

        The pending operation stays open in the trace — the checker will
        consider every placement of it, including none.
        """
        self._writer.record_indeterminate(thread, op_index, why, self.now())
        with self._lock:
            self.indeterminate += 1
        return self.allocate_thread()

    def finalize(self, outcome: str) -> None:
        """Write the end marker (idempotent) and close the trace."""
        with self._lock:
            if self._finalized:
                return
            self._finalized = True
        self._writer.finalize(outcome, self.now())

    def close(self) -> None:
        self._writer.close()
