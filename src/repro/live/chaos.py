"""Fault injection: a chaos proxy interposed on the client transport.

:class:`ChaosTransport` wraps any :class:`~repro.live.transport.Transport`
and injects faults *through the same typed failure hierarchy* the real
network uses, so the session and recorder exercise their production
paths, not special test hooks:

* ``latency`` — random sleeps before the request and before delivering
  the response.  Pure interval inflation: the recorded operation spans
  grow, which weakens precedence constraints (sound — more
  linearizations are admitted, never fewer).
* ``drop`` — the request is **not sent** but the client is told the
  call timed out (:class:`AmbiguousFailure`).  The operation is
  recorded as pending although it certainly did not take effect: the
  checker must be happy to linearize it *nowhere*.
* ``disconnect`` — the request **is sent and executed**, then the
  connection is torn down before the response is read
  (:class:`AmbiguousFailure`).  The operation is recorded as pending
  although it certainly *did* take effect: the checker must be happy to
  linearize it somewhere after its call.
* ``refuse`` — an injected pre-connect refusal
  (:class:`ConnectFailed`), exercising the safe retry-with-backoff
  path.
* ``kill`` — not a transport fault: :class:`SutKiller` SIGKILLs the
  service process once the recorder has seen a threshold of events,
  after which surviving sessions drain and the trace is finalized as a
  partial recording.

``drop`` and ``disconnect`` are deliberately the two opposite
resolutions of the same recorded artifact (a pending operation) — the
differential suite in ``tests/live`` relies on that to prove the
open-history semantics is exactly right: a correct service must never
be failed whichever way the ambiguity actually resolved.

All randomness is a seeded per-session :class:`random.Random`, so a
campaign with a given ``--chaos-seed`` injects the same faults at the
same points every run.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.core.events import Invocation, Response
from repro.live.transport import (
    AmbiguousFailure,
    ConnectFailed,
    Transport,
)

__all__ = [
    "CHAOS_MODES",
    "ChaosConfig",
    "ChaosTransport",
    "SutKiller",
    "parse_chaos",
]

CHAOS_MODES = ("latency", "drop", "disconnect", "refuse", "kill")


@dataclass(frozen=True)
class ChaosConfig:
    """Which faults to inject, how often, and from what seed."""

    modes: frozenset = field(default_factory=frozenset)
    seed: int = 0
    latency_prob: float = 0.25
    latency_max: float = 0.02  #: seconds, uniform
    drop_prob: float = 0.06
    disconnect_prob: float = 0.06
    refuse_prob: float = 0.05
    #: ``kill`` mode: SIGKILL the SUT once this many events are recorded.
    kill_after_events: int = 40

    def enabled(self, mode: str) -> bool:
        return mode in self.modes

    def session_rng(self, session_index: int) -> random.Random:
        """Deterministic per-session fault stream."""
        return random.Random(f"chaos:{self.seed}:{session_index}")


def parse_chaos(spec: str, seed: int = 0) -> ChaosConfig:
    """Parse ``--chaos`` ("drop,latency", "all", or "none")."""
    text = spec.strip().lower()
    if text in ("", "none"):
        return ChaosConfig(modes=frozenset(), seed=seed)
    if text == "all":
        return ChaosConfig(modes=frozenset(CHAOS_MODES), seed=seed)
    modes = []
    for part in text.split(","):
        mode = part.strip()
        if not mode:
            continue
        if mode not in CHAOS_MODES:
            raise ValueError(
                f"unknown chaos mode {mode!r} "
                f"(choose from {', '.join(CHAOS_MODES)}, 'all', or 'none')"
            )
        modes.append(mode)
    return ChaosConfig(modes=frozenset(modes), seed=seed)


class ChaosTransport(Transport):
    """A transport that misbehaves on purpose, deterministically."""

    def __init__(
        self, inner: Transport, config: ChaosConfig, rng: random.Random
    ) -> None:
        self.inner = inner
        self.config = config
        self.rng = rng
        #: counters for the differential suite: what was injected.
        self.injected: dict[str, int] = {m: 0 for m in CHAOS_MODES}

    def _inject(self, mode: str) -> None:
        self.injected[mode] += 1

    def connect(self) -> None:
        cfg = self.config
        if cfg.enabled("refuse") and self.rng.random() < cfg.refuse_prob:
            self._inject("refuse")
            raise ConnectFailed("ChaosRefused")
        self.inner.connect()

    def call(self, invocation: Invocation) -> Response:
        cfg = self.config
        if cfg.enabled("latency") and self.rng.random() < cfg.latency_prob:
            self._inject("latency")
            time.sleep(self.rng.uniform(0.0, cfg.latency_max))
        if cfg.enabled("drop") and self.rng.random() < cfg.drop_prob:
            # The request never reaches the wire, but the client can't
            # know that — it sees a timeout after the call was recorded.
            self._inject("drop")
            raise AmbiguousFailure("ChaosDrop")
        response = self.inner.call(invocation)
        if (
            cfg.enabled("disconnect")
            and self.rng.random() < cfg.disconnect_prob
        ):
            # The operation took effect server-side; the response is
            # discarded and the connection torn down before the client
            # learns the outcome.
            self._inject("disconnect")
            self.inner.reset()
            raise AmbiguousFailure("ChaosDisconnect")
        if cfg.enabled("latency") and self.rng.random() < cfg.latency_prob:
            self._inject("latency")
            time.sleep(self.rng.uniform(0.0, cfg.latency_max))
        return response

    def reset(self) -> None:
        self.inner.reset()

    def close(self) -> None:
        self.inner.close()


class SutKiller(threading.Thread):
    """Kill the SUT process once the recorder has seen enough events.

    Event-count (not wall-clock) triggering keeps the kill point
    roughly aligned with campaign progress whatever the host's speed,
    so the partial trace always has something worth checking.
    """

    def __init__(self, sut_process, recorder, after_events: int) -> None:
        super().__init__(name="sut-killer", daemon=True)
        self.sut_process = sut_process
        self.recorder = recorder
        self.after_events = after_events
        self._halt = threading.Event()
        self.fired = False

    def run(self) -> None:
        while not self._halt.wait(0.005):
            if self.recorder.events >= self.after_events:
                if self.sut_process.alive():
                    self.sut_process.kill()
                    self.fired = True
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5)
