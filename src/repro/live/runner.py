"""The live campaign runner: record against a service, then check.

:func:`run_live` is the whole pipeline: spawn N sessions against a
target service (an address — the runner does not care whether it is the
in-repo reference SUT or something external), record their histories
through the wall-clock recorder, survive whatever the chaos layer and
the real world do to the service, finalize the trace, and check it
offline with the :mod:`repro.monitor` backend.

Robustness contract (the point of this module):

* **The campaign never hangs.**  Every transport call carries the
  per-operation deadline, connection retries are bounded, and the
  runner joins sessions against a global deadline derived from those
  bounds; a wedged session is abandoned (daemon thread) and the trace
  is finalized without it.
* **A dying service degrades, not corrupts.**  The first session to
  exhaust its connection backoff trips the drain event; the other
  sessions stop at their next operation boundary, the partial trace is
  finalized with an explicit outcome, and the checker runs on what was
  recorded.
* **Verdicts keep the established precedence** ``FAIL > CRASHED >
  EXHAUSTED > PASS``: a violation found in a partial trace is still a
  proof (FAIL); an *unexpected* service death is CRASHED; a checker
  that hit its configuration cap is EXHAUSTED; only a fully drained,
  fully checked campaign is PASS.  A chaos-injected kill is an
  *expected* death: the verdict comes from the recorded prefix
  (PASS/EXHAUSTED/FAIL), flagged partial — the correct reference SUT
  must never be failed by the faults we ourselves injected.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.core.verdict import worst_verdict
from repro.live.chaos import ChaosConfig, ChaosTransport, SutKiller
from repro.live.recorder import LiveRecorder
from repro.live.session import (
    Session,
    SessionConfig,
    SessionStats,
    make_workload,
)
from repro.live.transport import HttpTransport
from repro.monitor import (
    MonitorLimitError,
    MonitorVerdict,
    get_model,
    load_trace,
    monitor_history,
)

__all__ = ["LiveConfig", "LiveResult", "render_live_result", "run_live"]


@dataclass(frozen=True)
class LiveConfig:
    """One live campaign: who, how much, under what faults."""

    model: str = "counter"
    sessions: int = 4
    ops: int = 25
    op_timeout: float = 1.0
    seed: int = 0
    chaos: ChaosConfig | None = None
    trace_out: str = "live.trace.jsonl"
    max_configurations: int | None = 500_000
    monitor_engine: str = "auto"
    subject: str | None = None
    #: Trace flush policy (see docs/LIVE.md): every n-th event — plus any
    #: event older than ``flush_interval`` seconds at the next append — is
    #: flushed to the OS and becomes visible to a same-host follower.
    flush_every_n: int = 1
    flush_interval: float = 0.0


@dataclass
class LiveResult:
    """Outcome of one live campaign."""

    verdict: str  #: PASS | FAIL | EXHAUSTED | CRASHED
    trace_path: str
    outcome: str  #: completed | drained | sut-died | killed-by-chaos | interrupted
    partial: bool  #: True when the service did not survive the campaign
    completed: int = 0
    indeterminate: int = 0
    errors: int = 0
    connect_retries: int = 0
    session_stats: list[SessionStats] = field(default_factory=list)
    monitor: MonitorVerdict | None = None
    injected: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.verdict == "FAIL"


def _join_deadline(config: LiveConfig) -> float:
    """An upper bound on how long a well-behaved campaign can take."""
    session = SessionConfig(ops=config.ops, op_timeout=config.op_timeout)
    backoff_total = session.backoff_cap * session.connect_attempts
    per_op = config.op_timeout + backoff_total + 1.0
    latency = 0.0
    if config.chaos is not None and config.chaos.enabled("latency"):
        latency = 2 * config.chaos.latency_max
    return 10.0 + config.ops * (per_op + latency)


def run_live(
    host: str,
    port: int,
    config: LiveConfig,
    *,
    sut_process=None,
    should_stop=None,
) -> LiveResult:
    """Run one live campaign against ``host:port`` and check the trace.

    *sut_process* (a :class:`repro.live.refsut.RefSutProcess`, optional)
    is only needed for the chaos ``kill`` mode and for telling an
    expected death from an unexpected one.  *should_stop* is the CLI's
    graceful-shutdown flag: polled between operations; when it trips,
    sessions drain and the partial trace is checked normally, exactly as
    for a service death.
    """
    model = get_model(config.model)
    recorder = LiveRecorder(
        config.trace_out,
        config.sessions,
        subject=config.subject,
        model=config.model,
        flush_every_n=config.flush_every_n,
        flush_interval=config.flush_interval,
    )
    drain = threading.Event()
    session_config = SessionConfig(ops=config.ops, op_timeout=config.op_timeout)
    sessions: list[Session] = []
    transports: list = []
    for index in range(config.sessions):
        transport = HttpTransport(host, port, timeout=config.op_timeout)
        if config.chaos is not None and config.chaos.modes:
            transport = ChaosTransport(
                transport, config.chaos, config.chaos.session_rng(index)
            )
        transports.append(transport)
        sessions.append(
            Session(
                index,
                transport,
                recorder,
                make_workload(
                    config.model,
                    index,
                    random.Random(f"workload:{config.seed}:{index}"),
                ),
                session_config,
                drain,
                rng=random.Random(f"backoff:{config.seed}:{index}"),
            )
        )

    killer = None
    if (
        config.chaos is not None
        and config.chaos.enabled("kill")
        and sut_process is not None
    ):
        killer = SutKiller(
            sut_process, recorder, config.chaos.kill_after_events
        )

    interrupted = False
    for session in sessions:
        session.start()
    if killer is not None:
        killer.start()
    try:
        deadline = _join_deadline(config)
        end = time.monotonic() + deadline
        for session in sessions:
            while session.is_alive():
                session.join(timeout=0.05)
                if should_stop is not None and should_stop() and not drain.is_set():
                    interrupted = True
                    drain.set()
                if session.stats.outcome == "connect-exhausted":
                    # Graceful degradation: one session has proven the
                    # service unreachable; tell the rest to drain.
                    drain.set()
                if time.monotonic() > end:
                    # Belt and braces: abandon wedged sessions rather
                    # than hang the campaign.
                    drain.set()
                    break
    finally:
        if killer is not None:
            killer.stop()
        # One session draining on connect-exhaustion must cascade even if
        # the join loop exited early.
        if any(s.stats.outcome == "connect-exhausted" for s in sessions):
            drain.set()
        for session in sessions:
            session.join(timeout=2.0)

    # -- classify how the campaign ended --------------------------------
    died = sut_process is not None and not sut_process.alive()
    expected_kill = died and getattr(sut_process, "killed_deliberately", False)
    if interrupted:
        outcome = "interrupted"
    elif expected_kill:
        outcome = "killed-by-chaos"
    elif died:
        outcome = "sut-died"
    elif all(s.stats.outcome == "finished" for s in sessions):
        outcome = "completed"
    else:
        outcome = "drained"
    recorder.finalize(outcome)

    result = LiveResult(
        verdict="PASS",
        trace_path=config.trace_out,
        outcome=outcome,
        partial=died or interrupted,
        completed=recorder.completed,
        indeterminate=recorder.indeterminate,
        errors=sum(s.stats.errors for s in sessions),
        connect_retries=sum(s.stats.connect_retries for s in sessions),
        session_stats=[s.stats for s in sessions],
    )
    for transport in transports:
        injected = getattr(transport, "injected", None)
        if injected:
            for mode, count in injected.items():
                result.injected[mode] = result.injected.get(mode, 0) + count
    if killer is not None and killer.fired:
        result.injected["kill"] = result.injected.get("kill", 0) + 1

    # -- check the recorded history offline -----------------------------
    trace = load_trace(config.trace_out)
    exhausted = False
    verdict: MonitorVerdict | None = None
    for history in trace.histories:
        try:
            verdict = monitor_history(
                history,
                model,
                engine=config.monitor_engine,
                max_configurations=config.max_configurations,
            )
        except MonitorLimitError:
            exhausted = True
            continue
        if not verdict.ok:
            break
    result.monitor = verdict

    # One verdict per independent observation; the shared lattice merges.
    verdicts = ["PASS"]
    if verdict is not None and not verdict.ok:
        verdicts.append("FAIL")
    if died and not expected_kill:
        verdicts.append("CRASHED")
    if exhausted:
        verdicts.append("EXHAUSTED")
    result.verdict = worst_verdict(verdicts)
    return result


def render_live_result(result: LiveResult) -> str:
    """The human-readable campaign report."""
    lines = [
        f"live verdict: {result.verdict}"
        + (" (partial: the service did not survive)" if result.partial else ""),
        f"  outcome: {result.outcome}",
        f"  trace: {result.trace_path}",
        f"  operations: {result.completed} completed, "
        f"{result.indeterminate} indeterminate, {result.errors} errors, "
        f"{result.connect_retries} connection retries",
    ]
    if result.injected:
        injected = ", ".join(
            f"{mode}={count}"
            for mode, count in sorted(result.injected.items())
            if count
        )
        lines.append(f"  chaos injected: {injected or 'none'}")
    for stats in result.session_stats:
        lines.append(
            f"  session {stats.index}: {stats.completed} ok, "
            f"{stats.indeterminate} indeterminate ({stats.outcome})"
        )
    monitor = result.monitor
    if monitor is not None and monitor.resolved_pending:
        taken = sum(1 for _op, took in monitor.resolved_pending if took)
        dropped = len(monitor.resolved_pending) - taken
        lines.append(
            f"  indeterminate resolution: {taken} linearized as effective, "
            f"{dropped} as never-applied"
        )
    if monitor is not None and monitor.result is not None:
        lines.append(
            f"  monitor: engine {monitor.result.engine}, "
            f"{monitor.result.configurations} configurations"
        )
    return "\n".join(lines)
