"""Client transport: where the network's failure modes become typed.

The whole soundness story of live recording rests on one distinction,
so the transport encodes it in the exception hierarchy:

* :class:`ConnectFailed` — the failure happened **before the request
  could have been sent** (TCP connect refused/timed out).  The
  operation certainly did not take effect, so the session may retry it
  freely (with jittered backoff) without recording anything.
* :class:`AmbiguousFailure` — the failure happened **after the request
  may have been sent** (send error, response timeout, connection reset
  mid-exchange).  Whether the operation took effect is unknowable from
  the client, so it must *not* be retried and must be recorded as a
  pending (indeterminate) operation — the open-history semantics of
  :mod:`repro.monitor.wgl` then allows it to have happened anywhere
  after its invocation, or not at all.

Collapsing the two — retrying an ambiguous failure, or recording a
pre-connect failure as pending — would respectively unsoundly duplicate
effects (a retried increment that *did* land counts twice) or dilute
the history with operations that never reached the wire.

:class:`HttpTransport` is the concrete client for the reference SUT's
wire protocol (one ``POST /op/<Method>`` per operation over a keep-alive
connection).  The chaos proxy (:mod:`repro.live.chaos`) wraps any
:class:`Transport` and injects faults through these same two types, so
the session layer cannot tell injected faults from real ones — which is
the point.
"""

from __future__ import annotations

import ast
import http.client
import socket
from urllib.parse import quote

from repro.core.events import Invocation, Response

__all__ = [
    "AmbiguousFailure",
    "ConnectFailed",
    "HttpTransport",
    "Transport",
    "TransportError",
]


class TransportError(Exception):
    """Base of the transport failure hierarchy."""

    def __init__(self, why: str) -> None:
        super().__init__(why)
        self.why = why


class ConnectFailed(TransportError):
    """Pre-invocation failure: the request was never sent — safe to retry."""


class AmbiguousFailure(TransportError):
    """Post-invocation failure: the request may have taken effect.

    Never retried; recorded as an indeterminate (pending) operation.
    """


class Transport:
    """One session's channel to the service under test."""

    def connect(self) -> None:
        """Ensure a connection exists; raises :class:`ConnectFailed`."""
        raise NotImplementedError

    def call(self, invocation: Invocation) -> Response:
        """Perform one operation; raises :class:`AmbiguousFailure`.

        Must only be called after a successful :meth:`connect` — the
        split is what lets the session retry connection establishment
        (safe) without ever retrying an in-flight operation (unsafe).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop the connection after an ambiguous failure."""

    def close(self) -> None:
        """Release resources."""


class HttpTransport(Transport):
    """HTTP/1.1 keep-alive client for the reference SUT wire protocol."""

    def __init__(self, host: str, port: int, timeout: float = 1.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def connect(self) -> None:
        if self._conn is not None:
            return
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.connect()
        except (OSError, http.client.HTTPException) as exc:
            conn.close()
            raise ConnectFailed(type(exc).__name__) from exc
        # Reconnection is connect()'s job: if call() silently re-opened a
        # dropped socket mid-operation, the pre/post-invocation failure
        # classification would blur.
        conn.auto_open = 0
        self._conn = conn

    def call(self, invocation: Invocation) -> Response:
        if self._conn is None:
            raise ConnectFailed("NotConnected")
        path = (
            f"/op/{quote(invocation.method)}"
            f"?a={quote(repr(tuple(invocation.args)))}"
        )
        try:
            self._conn.request("POST", path)
            response = self._conn.getresponse()
            body = response.read().decode("utf-8")
        except (OSError, http.client.HTTPException, socket.timeout) as exc:
            # From the first byte of request() onward the server may have
            # received and executed the operation — ambiguous, full stop.
            self.reset()
            raise AmbiguousFailure(type(exc).__name__) from exc
        if response.status == 200:
            try:
                value = ast.literal_eval(body)
            except (ValueError, SyntaxError) as exc:
                self.reset()
                raise AmbiguousFailure("UnparseableResponse") from exc
            return Response.of(value)
        # An application-level error is a *definite* outcome: the service
        # answered.  Record it as a raised response, not an ambiguity.
        return Response("raised", body.strip() or f"HTTP{response.status}")

    def reset(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def close(self) -> None:
        self.reset()
