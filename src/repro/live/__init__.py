"""Live-service checking: record a real service, check it offline.

The cooperative scheduler (:mod:`repro.exec`) owns its threads and can
enumerate their interleavings; a live service cannot be scheduled at
all.  This subsystem is the other end of the spectrum: N concurrent
client sessions drive a service over the wire in real time, a
wall-clock recorder captures every invocation/response interval into a
crash-safe v2 JSONL trace, and the recorded history is checked offline
by the :mod:`repro.monitor` engines.

Layers, bottom up:

* :mod:`repro.live.transport` — typed failure split: pre-invocation
  :class:`~repro.live.transport.ConnectFailed` (safe to retry) vs
  post-invocation :class:`~repro.live.transport.AmbiguousFailure`
  (never retried; recorded as an indeterminate/pending operation).
* :mod:`repro.live.recorder` — monotonic-clock recording with logical
  thread retirement after an indeterminate operation.
* :mod:`repro.live.session` — the client worker threads, with jittered
  exponential backoff on connection establishment.
* :mod:`repro.live.chaos` — deterministic fault-injection proxy
  (latency, drop, disconnect, refuse, SUT kill).
* :mod:`repro.live.refsut` — the in-repo HTTP reference SUT (correct
  and seeded-buggy variants of counter/queue/register).
* :mod:`repro.live.runner` — campaign orchestration, graceful
  degradation when the service dies, and the offline verdict.
"""

from repro.live.chaos import (
    CHAOS_MODES,
    ChaosConfig,
    ChaosTransport,
    SutKiller,
    parse_chaos,
)
from repro.live.recorder import LiveRecorder
from repro.live.refsut import (
    VARIANTS,
    RefSut,
    RefSutProcess,
    start_refsut_process,
    start_server,
)
from repro.live.runner import (
    LiveConfig,
    LiveResult,
    render_live_result,
    run_live,
)
from repro.live.session import Session, SessionConfig, SessionStats, make_workload
from repro.live.transport import (
    AmbiguousFailure,
    ConnectFailed,
    HttpTransport,
    Transport,
    TransportError,
)

__all__ = [
    "AmbiguousFailure",
    "CHAOS_MODES",
    "ChaosConfig",
    "ChaosTransport",
    "ConnectFailed",
    "HttpTransport",
    "LiveConfig",
    "LiveRecorder",
    "LiveResult",
    "RefSut",
    "RefSutProcess",
    "Session",
    "SessionConfig",
    "SessionStats",
    "SutKiller",
    "Transport",
    "TransportError",
    "VARIANTS",
    "make_workload",
    "parse_chaos",
    "render_live_result",
    "run_live",
    "start_refsut_process",
    "start_server",
]
