"""One-command regeneration of the paper's evaluation (Section 5).

``python -m repro reproduce`` runs every experiment at a configurable
scale and writes a self-contained markdown report: Table 1, Table 2 for
both vintages, the Section 5.4–5.7 observations and the Section 6
extension triage.  The heavy lifting reuses the same code paths as the
benchmark suite; this module only sequences them and formats the output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis import check_conflict_serializability, detect_races
from repro.core import (
    DOTNET_POLICIES,
    CheckConfig,
    FiniteTest,
    Invocation,
    SystemUnderTest,
    TestHarness,
    check_relaxed,
    check_with_harness,
)
from repro.core.campaign import campaign_row, render_table2
from repro.runtime import DFSStrategy, Scheduler
from repro.structures import REGISTRY, ROOT_CAUSES

__all__ = ["EvaluationScale", "run_evaluation"]


@dataclass(frozen=True)
class EvaluationScale:
    """Knobs trading fidelity for wall-clock time."""

    samples_per_class: int = 4
    rows: int = 3
    cols: int = 3
    phase2_schedules: int = 150
    comparison_executions: int = 500
    seed: int = 1

    def campaign_config(self) -> CheckConfig:
        return CheckConfig(
            phase2_strategy="random",
            phase2_executions=self.phase2_schedules,
            seed=self.seed,
            max_serial_executions=1800,
        )


def _inv(method, *args):
    return Invocation(method, args)


def _section(lines: list[str], title: str) -> None:
    lines.append("")
    lines.append(f"## {title}")
    lines.append("")


def _table1(lines: list[str]) -> None:
    _section(lines, "Table 1 — classes and methods checked")
    lines.append("| class | methods | root causes (pre / beta) |")
    lines.append("|---|---|---|")
    for entry in REGISTRY:
        pre = ",".join(c.tag for c in entry.causes_for("pre")) or "-"
        beta = ",".join(c.tag for c in entry.causes_for("beta")) or "-"
        lines.append(f"| {entry.name} | {entry.method_count} | {pre} / {beta} |")
    total = sum(e.method_count for e in REGISTRY)
    lines.append(f"| **total** | **{total}** | |")


def _table2(lines: list[str], scale: EvaluationScale, scheduler: Scheduler) -> None:
    config = scale.campaign_config()
    for version in ("pre", "beta"):
        rows = [
            campaign_row(
                entry,
                version,
                samples=scale.samples_per_class,
                rows=scale.rows,
                cols=scale.cols,
                seed=scale.seed,
                config=config,
                scheduler=scheduler,
            )
            for entry in REGISTRY
        ]
        _section(lines, f"Table 2 — Line-Up campaign ({version})")
        lines.append("```")
        lines.append(render_table2(rows))
        lines.append("```")
    _section(lines, "Root-cause legend")
    for tag in sorted(ROOT_CAUSES):
        cause = ROOT_CAUSES[tag]
        lines.append(f"* **{tag}** [{cause.category}] {cause.summary}")


def _comparisons(lines: list[str], scale: EvaluationScale, scheduler: Scheduler) -> None:
    _section(lines, "Section 5.6 — checker comparison on correct (beta) code")
    workloads = [
        ("Lazy", [[_inv("Value")], [_inv("Value"), _inv("IsValueCreated")]]),
        ("SemaphoreSlim", [[_inv("WaitZero"), _inv("Release")], [_inv("WaitZero")]]),
        ("ConcurrentStack", [[_inv("Push", 10), _inv("TryPop")], [_inv("Push", 20)]]),
        ("ConcurrentQueue", [[_inv("Enqueue", 10), _inv("TryDequeue")], [_inv("Enqueue", 20)]]),
        ("ConcurrentLinkedList", [[_inv("AddFirst", 10)], [_inv("Count"), _inv("AddLast", 20)]]),
    ]
    lines.append("| class | executions | benign races | atomicity warnings |")
    lines.append("|---|---|---|---|")
    from repro.structures import get_class

    total_warnings = 0
    for name, columns in workloads:
        entry = get_class(name)
        subject = SystemUnderTest(entry.factory("beta"), name)
        races: set[str] = set()
        warnings = 0
        executions = 0
        with TestHarness(subject, scheduler=scheduler) as harness:
            for _history, outcome in harness.explore_concurrent(
                FiniteTest.of(columns),
                DFSStrategy(preemption_bound=2),
                max_executions=scale.comparison_executions,
            ):
                executions += 1
                for race in detect_races(outcome.accesses):
                    races.add(race.name)
                if not check_conflict_serializability(outcome.accesses).serializable:
                    warnings += 1
        total_warnings += warnings
        lines.append(
            f"| {name} | {executions} | {', '.join(sorted(races)) or '-'} "
            f"| {warnings} |"
        )
    lines.append("")
    lines.append(
        f"Line-Up reports zero violations on the same code; the atomicity "
        f"monitor raised {total_warnings} false alarms (paper: 'hundreds', "
        f"all benign)."
    )


def _extension_triage(lines: list[str], scheduler: Scheduler) -> None:
    _section(lines, "Section 6 — strict vs relaxed verdicts per root cause")
    lines.append("| class | ver | cause | category | strict | relaxed |")
    lines.append("|---|---|---|---|---|---|")
    for entry in REGISTRY:
        for cause in entry.causes:
            if cause.witness_test is None:
                continue
            version = "pre" if cause.category == "bug" else "beta"
            subject = SystemUnderTest(
                entry.factory(version), f"{entry.name}({version})"
            )
            with TestHarness(subject, scheduler=scheduler) as harness:
                strict = check_with_harness(harness, cause.witness_test, CheckConfig())
                relaxed = check_relaxed(
                    harness,
                    cause.witness_test,
                    CheckConfig(),
                    DOTNET_POLICIES.get(entry.name),
                )
            lines.append(
                f"| {entry.name} | {version} | {cause.tag} | {cause.category} "
                f"| {strict.verdict} | {relaxed.verdict} |"
            )


def run_evaluation(scale: EvaluationScale | None = None) -> str:
    """Run every experiment; returns the markdown report."""
    scale = scale or EvaluationScale()
    started = time.time()
    scheduler = Scheduler()
    lines: list[str] = [
        "# Line-Up reproduction report",
        "",
        f"Generated by `python -m repro reproduce` "
        f"(samples/class={scale.samples_per_class}, "
        f"{scale.rows}x{scale.cols} tests, "
        f"{scale.phase2_schedules} phase-2 schedules, seed={scale.seed}).",
    ]
    try:
        _table1(lines)
        _table2(lines, scale, scheduler)
        _comparisons(lines, scale, scheduler)
        _extension_triage(lines, scheduler)
    finally:
        scheduler.shutdown()
    lines.append("")
    lines.append(f"_Total wall time: {time.time() - started:.1f}s_")
    lines.append("")
    return "\n".join(lines)
