"""The supervisor side of process isolation: the worker pool.

The :class:`WorkerPool` fans tests across N sandboxed child processes
(also a wall-clock win — campaigns are embarrassingly parallel per
test), and is built around one invariant: **a subject can kill a worker,
never the campaign**.  The supervisor's per-worker state machine:

::

    SPAWNED ──ready──▶ IDLE ──task──▶ BUSY ──result──▶ IDLE
       │                 │              │
       │ (no ready       │ (death)     │ (death, heartbeat loss,
       │  in time)       ▼              ▼  task timeout, task-error)
       └────────────▶ CRASHED: retry the task with exponential
                      backoff; after ``max_retries`` retries the test
                      is QUARANTINED — a ``CRASHED`` verdict plus a
                      crash-report artifact — and the campaign goes on.

Crash detection is threefold: process death (exit code / deadly signal
via the process sentinel), heartbeat loss (the whole process is wedged —
stopped, thrashing, or stuck in an uninterruptible syscall), and an
optional per-task wall-clock timeout.

The **flaky-verdict guard**: a worker that hosted a hostile subject may
have been corrupted by it (the very premise of isolating workers), so
when a worker crashes, FAIL verdicts it produced in its lifetime are
re-run once on a fresh worker.  A re-run that still FAILs confirms the
verdict; a re-run that PASSes is a disagreement — the test is run once
more and reported explicitly as ``nondeterministic-verdict`` rather than
silently keeping the first answer.  (PASS verdicts are not re-checked:
a FAIL is an actionable proof per Theorem 5 and earns the scrutiny.)
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal as signal_module
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.budget import ExplorationControl
from repro.core.fileio import atomic_write_text
from repro.exec import sandbox
from repro.exec.protocol import ProtocolError, recv_message, send_message
from repro.exec.sandbox import ResourceLimits

__all__ = [
    "CRASH_REPORT_FORMAT",
    "CRASH_REPORT_VERSION",
    "PoolConfig",
    "SupervisorError",
    "TaskOutcome",
    "TaskSpec",
    "WorkerPool",
    "repro_command",
]

CRASH_REPORT_FORMAT = "lineup-crash-report"
CRASH_REPORT_VERSION = 1

#: Verdict assigned to quarantined tests.
CRASHED = "CRASHED"
#: Verdict assigned when re-runs of a FAIL disagree (flaky-verdict guard).
NONDETERMINISTIC_VERDICT = "nondeterministic-verdict"


class SupervisorError(Exception):
    """The pool itself failed (spawn failures, misuse) — not a test crash."""


@dataclass(frozen=True)
class TaskSpec:
    """One check to run in a worker: subject by name, test, config.

    ``test`` and ``config`` are the JSON forms of
    :func:`repro.core.checkpoint.test_to_dict` /
    :func:`~repro.core.checkpoint.config_to_dict`; ``provider`` names the
    module whose ``get_class`` resolves ``class_name`` inside the worker.

    ``kind`` selects the worker entry point: ``"check"`` runs a full
    two-phase check, ``"probe"`` expands one decision prefix, and
    ``"shard"`` runs one lease of a sharded exploration (both defined in
    :mod:`repro.swarm.worker`); ``payload`` carries the kind-specific
    arguments across the pipe.  ``swarm`` is supervision metadata only —
    the sharding flags of the owning swarm run, so crash-report repro
    commands stay copy-pasteable — and never crosses to the worker.
    """

    index: int
    class_name: str
    version: str
    test: dict
    config: dict = field(default_factory=dict)
    provider: str | None = None
    kind: str = "check"
    payload: dict | None = None
    swarm: dict | None = None

    def to_message(self) -> dict:
        return {
            "class_name": self.class_name,
            "version": self.version,
            "test": self.test,
            "config": self.config,
            "provider": self.provider,
            "kind": self.kind,
            "payload": self.payload,
        }


@dataclass
class TaskOutcome:
    """Final fate of one task after retries and quarantine decisions."""

    index: int
    verdict: str  #: "PASS", "FAIL", "EXHAUSTED", CRASHED, or the flaky marker
    summary: dict | None = None  #: TestSummary dict of the decisive attempt
    verdicts: list[str] = field(default_factory=list)  #: all completed attempts
    retries: int = 0  #: crash-retry attempts consumed
    crash_report: str | None = None  #: artifact path when quarantined
    crashes: list[dict] = field(default_factory=list)

    @property
    def crashed(self) -> bool:
        return self.verdict == CRASHED


@dataclass(frozen=True)
class PoolConfig:
    """Supervision knobs for one :class:`WorkerPool`."""

    workers: int = 2
    start_method: str = "spawn"  #: "spawn" or "forkserver"
    limits: ResourceLimits = field(default_factory=ResourceLimits)
    heartbeat_interval: float = 0.2
    heartbeat_timeout: float = 15.0
    ready_timeout: float = 60.0  #: max seconds for a spawned worker to report in
    task_timeout: float | None = None  #: wall-clock cap per attempt
    max_retries: int = 2  #: crash retries before quarantine
    backoff_seconds: float = 0.1  #: first retry delay; doubles per retry
    backoff_cap: float = 5.0
    #: +/- fraction of jitter on each backoff delay, so shards of a swarm
    #: that crashed together don't retry in lockstep.  Drawn from a pool-
    #: owned PRNG seeded with ``jitter_seed``, so runs stay reproducible.
    backoff_jitter: float = 0.5
    jitter_seed: int = 0
    report_dir: str | None = None  #: crash reports + worker stderr files

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.start_method not in ("spawn", "forkserver"):
            raise ValueError(
                f"start_method must be 'spawn' or 'forkserver', "
                f"not {self.start_method!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be within [0, 1]")


def repro_command(spec: TaskSpec) -> str:
    """The minimal shell command reproducing a quarantined test."""
    from repro.core.checkpoint import test_from_dict

    if spec.kind == "stream":
        # A stream task has no FiniteTest; its whole input is the trace
        # file, so the repro is the single-process watch of it.
        payload = spec.payload or {}
        parts = [
            "python -m repro watch",
            str(payload.get("path", "TRACE")),
            f"--model {payload.get('model', spec.class_name)}",
        ]
        if payload.get("follow"):
            parts.append("--follow")
        return " ".join(parts)

    test = test_from_dict(spec.test)

    def render_ops(ops) -> str:
        return "; ".join(
            f"{op.method}({', '.join(repr(a) for a in op.args)})"
            if op.args
            else op.method
            for op in ops
        )

    parts = [
        "python -m repro check",
        spec.class_name,
        f"--version {spec.version}",
        f'--test "{" | ".join(render_ops(col) for col in test.columns)}"',
    ]
    if test.init:
        parts.append(f'--init "{render_ops(test.init)}"')
    if test.final:
        parts.append(f'--final "{render_ops(test.final)}"')
    if spec.provider and spec.provider != sandbox.DEFAULT_PROVIDER:
        parts.append(f"--provider {spec.provider}")
    if spec.kind in ("shard", "probe") and spec.swarm:
        # A swarm task only makes sense re-run as a swarm: keep the
        # sharding and isolation flags so the command is copy-pasteable.
        parts.append(f"--shards {spec.swarm.get('shards', 4)}")
        if spec.swarm.get("workers") is not None:
            parts.append(f"--workers {spec.swarm['workers']}")
        if spec.swarm.get("mem_limit_mb") is not None:
            parts.append(f"--mem-limit-mb {spec.swarm['mem_limit_mb']}")
        if spec.swarm.get("max_retries") is not None:
            parts.append(f"--max-retries {spec.swarm['max_retries']}")
    return " ".join(parts)


class _Worker:
    """One supervised child process (a single generation)."""

    _counter = 0

    def __init__(self, config: PoolConfig, report_dir: str) -> None:
        _Worker._counter += 1
        self.id = _Worker._counter
        ctx = multiprocessing.get_context(config.start_method)
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.stderr_path = os.path.join(report_dir, f"worker-{self.id}.stderr")
        self.process = ctx.Process(
            target=sandbox.worker_main,
            args=(
                child_conn,
                self.stderr_path,
                config.limits.to_dict(),
                config.heartbeat_interval,
            ),
            name=f"lineup-worker-{self.id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.spawned_at = time.monotonic()
        self.last_message = self.spawned_at
        self.last_heartbeat: dict | None = None
        self.ready = False
        self.rlimits: dict = {}
        self.task: int | None = None
        self.task_started: float | None = None
        self.completed_fails: list[int] = []  #: FAILs produced this generation
        self.dead = False

    def stderr_tail(self, limit: int = 4096) -> str:
        try:
            with open(self.stderr_path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(max(0, size - limit))
                return handle.read().decode("utf-8", "replace")
        except OSError:
            return ""

    def exit_info(self) -> dict:
        code = self.process.exitcode
        info: dict[str, Any] = {"exitcode": code}
        if code is not None and code < 0:
            try:
                info["signal"] = signal_module.Signals(-code).name
            except ValueError:  # pragma: no cover - unknown signal number
                info["signal"] = f"signal {-code}"
        return info

    def kill(self) -> None:
        try:
            self.process.kill()  # SIGKILL also fells SIGSTOPped processes
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        self.process.join(timeout=5.0)

    def close(self, graceful: bool) -> None:
        if graceful and self.process.is_alive():
            try:
                send_message(self.conn, {"type": "shutdown"})
                self.process.join(timeout=2.0)
            except ProtocolError:
                pass
        if self.process.is_alive():
            self.kill()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class _TaskState:
    """Supervision bookkeeping for one task across attempts."""

    def __init__(self, spec: TaskSpec, prior_retries: int = 0) -> None:
        self.spec = spec
        self.verdicts: list[str] = []
        self.summaries: list[dict] = []
        self.crashes: list[dict] = []
        self.retries = prior_retries
        self.not_before = 0.0  #: backoff gate for the next dispatch
        self.flaky_checked = False  #: a suspect-FAIL re-run was scheduled
        self.outcome: TaskOutcome | None = None


class WorkerPool:
    """Supervised pool of sandboxed workers; reusable across task batches."""

    def __init__(self, config: PoolConfig | None = None) -> None:
        self.config = config or PoolConfig()
        self.report_dir = self.config.report_dir or tempfile.mkdtemp(
            prefix="lineup-exec-"
        )
        os.makedirs(self.report_dir, exist_ok=True)
        self._workers: list[_Worker] = []
        self._closed = False
        self._states: dict[int, _TaskState] = {}
        self._spawn_failures = 0
        #: graceful degradation: shrinks below config.workers when fresh
        #: workers repeatedly fail to come up but survivors still exist.
        self._worker_limit = self.config.workers
        self._backoff_rng = random.Random(self.config.jitter_seed)
        self._on_outcome: (
            Callable[[TaskOutcome, dict[int, int]], None] | None
        ) = None
        self._quarantine_extra: (
            Callable[[TaskSpec], dict | None] | None
        ) = None

    @property
    def worker_limit(self) -> int:
        """Workers the pool will currently run (see graceful degradation)."""
        return self._worker_limit

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.close(graceful=True)
        self._workers.clear()

    # -- the supervision loop ---------------------------------------------

    def run(
        self,
        tasks: list[TaskSpec],
        *,
        prior_retries: dict[int, int] | None = None,
        control: ExplorationControl | None = None,
        on_outcome: Callable[[TaskOutcome, dict[int, int]], None] | None = None,
        quarantine_extra: Callable[[TaskSpec], dict | None] | None = None,
    ) -> tuple[list[TaskOutcome], str | None]:
        """Run *tasks* to completion (or halt); returns (outcomes, stop).

        *prior_retries* restores crash-retry counters from a checkpoint so
        a resumed test does not get a fresh retry allowance; *control* is
        polled between events — on halt the unfinished tasks are simply
        not in the outcome list (a resume re-runs them); *on_outcome*
        fires on every finalized (or amended — see the flaky guard)
        outcome, in completion order, with the current retry-counter map
        (the campaign checkpoint hook persists both); *quarantine_extra*
        is called with the spec as a task is quarantined and may return
        extra keys to merge into the crash report (the swarm coordinator
        uses it to attach a resumable shard checkpoint).

        Outcomes are returned sorted by task index.
        """
        if self._closed:
            raise SupervisorError("pool is closed")
        states = {
            spec.index: _TaskState(
                spec, prior_retries=(prior_retries or {}).get(spec.index, 0)
            )
            for spec in tasks
        }
        if len(states) != len(tasks):
            raise SupervisorError("task indices must be unique")
        queue: deque[int] = deque(spec.index for spec in tasks)
        self._on_outcome = on_outcome
        self._quarantine_extra = quarantine_extra
        self._states = states
        self._spawn_failures = 0
        for worker in self._workers:
            worker.completed_fails.clear()
        if control is not None:
            control.start()
        stop_reason: str | None = None
        while any(state.outcome is None for state in states.values()):
            if control is not None:
                stop_reason = control.halt_reason()
                if stop_reason is not None:
                    break
            self._reap_workers(states, queue)
            self._dispatch(states, queue)
            self._drain_messages(states, queue)
        outcomes = sorted(
            (s.outcome for s in states.values() if s.outcome is not None),
            key=lambda outcome: outcome.index,
        )
        return outcomes, stop_reason

    def _retry_counters(self) -> dict[int, int]:
        """Nonzero crash-retry counters of the active batch (checkpoints)."""
        return {
            index: state.retries
            for index, state in self._states.items()
            if state.retries
        }

    # -- internals ---------------------------------------------------------

    def _alive_workers(self) -> list[_Worker]:
        return [w for w in self._workers if not w.dead]

    def _dispatch(self, states: dict[int, _TaskState], queue: deque[int]) -> None:
        """Assign queued tasks to idle ready workers; spawn up to N."""
        now = time.monotonic()
        runnable = [
            index
            for index in queue
            if states[index].not_before <= now and states[index].outcome is None
        ]
        if not runnable:
            return
        idle = [w for w in self._alive_workers() if w.ready and w.task is None]
        while len(self._alive_workers()) < min(self._worker_limit, len(runnable)):
            self._workers.append(_Worker(self.config, self.report_dir))
        for worker in idle:
            if not runnable:
                break
            index = runnable.pop(0)
            queue.remove(index)
            spec = states[index].spec
            try:
                send_message(
                    worker.conn,
                    {"type": "task", "id": index, "spec": spec.to_message()},
                )
            except ProtocolError:
                worker.dead = True  # picked up by the next reap
                queue.appendleft(index)
                continue
            worker.task = index
            worker.task_started = time.monotonic()

    def _drain_messages(
        self, states: dict[int, _TaskState], queue: deque[int]
    ) -> None:
        conns = {w.conn: w for w in self._alive_workers()}
        if not conns:
            time.sleep(0.01)
            return
        try:
            readable = multiprocessing.connection.wait(
                list(conns), timeout=0.05
            )
        except OSError:  # pragma: no cover - racing a worker death
            readable = []
        for conn in readable:
            worker = conns[conn]
            while True:
                try:
                    if not conn.poll(0):
                        break
                    message = recv_message(conn)
                except (ProtocolError, OSError):
                    worker.dead = True  # EOF/torn frame: treated as death
                    break
                if message is None:  # pragma: no cover - poll said readable
                    break
                self._handle_message(worker, message, states, queue)

    def _handle_message(
        self,
        worker: _Worker,
        message: dict,
        states: dict[int, _TaskState],
        queue: deque[int],
    ) -> None:
        worker.last_message = time.monotonic()
        kind = message.get("type")
        if kind == "ready":
            worker.ready = True
            worker.rlimits = message.get("rlimits", {})
            self._spawn_failures = 0
        elif kind == "heartbeat":
            worker.last_heartbeat = message
        elif kind == "result":
            index = message["id"]
            worker.task = None
            worker.task_started = None
            if index not in states:  # stale result from a previous batch
                return
            state = states[index]
            verdict = message.get("verdict", "PASS")
            summary = message.get("summary")
            state.verdicts.append(verdict)
            if summary is not None:
                state.summaries.append(summary)
            if verdict == "FAIL":
                worker.completed_fails.append(index)
            self._settle_verdict(state, queue)
        elif kind == "task-error":
            index = message["id"]
            worker.task = None
            worker.task_started = None
            if index not in states:
                return
            self._record_crash(
                states[index],
                queue,
                {
                    "reason": "task-error",
                    "error": message.get("error", ""),
                    "worker": worker.id,
                    "rlimits": worker.rlimits,
                },
            )

    def _settle_verdict(self, state: _TaskState, queue: deque[int]) -> None:
        """Finalize (or escalate) a task that just completed an attempt."""
        verdicts = state.verdicts
        if len(verdicts) >= 2 and "FAIL" in verdicts and "PASS" in verdicts:
            if len(verdicts) == 2:
                # Disagreement: gather one more data point before judging.
                state.outcome = None
                queue.append(state.spec.index)
                return
            self._finalize(state, NONDETERMINISTIC_VERDICT)
            return
        self._finalize(state, verdicts[-1])

    def _finalize(
        self, state: _TaskState, verdict: str, crash_report: str | None = None
    ) -> None:
        decisive = state.summaries[-1] if state.summaries else None
        state.outcome = TaskOutcome(
            index=state.spec.index,
            verdict=verdict,
            summary=decisive,
            verdicts=list(state.verdicts),
            retries=state.retries,
            crash_report=crash_report,
            crashes=list(state.crashes),
        )
        if self._on_outcome is not None:
            # Fires on amendments too (a flaky re-check can replace an
            # earlier FAIL), so checkpoint hooks always see the latest.
            self._on_outcome(state.outcome, self._retry_counters())

    def _reap_workers(
        self, states: dict[int, _TaskState], queue: deque[int]
    ) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.dead or not worker.process.is_alive():
                # Drain any result that raced the death before judging.
                self._drain_corpse(worker, states, queue)
                self._handle_worker_death(
                    worker, states, queue, reason="worker-died"
                )
            elif not worker.ready and (
                now - worker.spawned_at > self.config.ready_timeout
            ):
                worker.kill()
                self._handle_worker_death(
                    worker, states, queue, reason="no-ready"
                )
            elif worker.task is not None and (
                now - worker.last_message > self.config.heartbeat_timeout
            ):
                worker.kill()
                self._handle_worker_death(
                    worker, states, queue, reason="heartbeat-loss"
                )
            elif (
                worker.task is not None
                and self.config.task_timeout is not None
                and worker.task_started is not None
                and now - worker.task_started > self.config.task_timeout
            ):
                worker.kill()
                self._handle_worker_death(
                    worker, states, queue, reason="task-timeout"
                )

    def _drain_corpse(
        self, worker: _Worker, states: dict[int, _TaskState], queue: deque[int]
    ) -> None:
        """A dead worker's pipe may still hold its final result; honour it."""
        while True:
            try:
                if not worker.conn.poll(0):
                    return
                message = recv_message(worker.conn)
            except (ProtocolError, OSError):
                return
            if message is None:
                return
            self._handle_message(worker, message, states, queue)

    def _handle_worker_death(
        self,
        worker: _Worker,
        states: dict[int, _TaskState],
        queue: deque[int],
        reason: str,
    ) -> None:
        worker.dead = True
        self._workers.remove(worker)
        if not worker.ready:
            # Dying before ever reporting ready is an environment problem
            # (import failure, broken interpreter), not a hostile subject;
            # respawning forever would spin. Tolerate a few — a subject
            # killed during sandbox setup looks the same — then degrade
            # gracefully onto the survivors, or give up if there are none.
            self._spawn_failures += 1
            if self._spawn_failures > 3:
                survivors = [
                    w for w in self._alive_workers() if w.ready
                ]
                if survivors and len(survivors) < self._worker_limit:
                    self._worker_limit = len(survivors)
                    self._spawn_failures = 0
                else:
                    raise SupervisorError(
                        "workers repeatedly died before initializing "
                        f"(see stderr files in {self.report_dir})"
                    )
        # Reap before reading the exit code, else a just-died child still
        # reports exitcode None.
        worker.process.join(timeout=1.0)
        info = {
            "reason": reason,
            "worker": worker.id,
            **worker.exit_info(),
            "last_heartbeat": worker.last_heartbeat,
            "stderr_tail": worker.stderr_tail(),
            "rlimits": worker.rlimits,
        }
        worker.close(graceful=False)
        if worker.task is not None and worker.task in states:
            state = states[worker.task]
            if state.outcome is None:
                self._record_crash(state, queue, info)
        # The flaky-verdict guard: FAILs this worker produced are suspect
        # (a hostile subject may have corrupted the process before dying);
        # re-run each once on a fresh worker.
        for index in worker.completed_fails:
            state = states.get(index)
            if (
                state is not None
                and state.outcome is not None
                and state.outcome.verdict == "FAIL"
                and len(state.verdicts) == 1
                and not state.flaky_checked
            ):
                state.flaky_checked = True
                state.outcome = None
                queue.append(index)

    def _record_crash(
        self, state: _TaskState, queue: deque[int], info: dict
    ) -> None:
        state.crashes.append(info)
        state.retries += 1
        if state.retries > self.config.max_retries:
            if "FAIL" in state.verdicts:
                # A completed FAIL outlives later crashes: per Theorem 5 a
                # violation is a proof; the crash evidence rides along.
                self._finalize(state, "FAIL")
                return
            self._finalize(state, CRASHED, crash_report=self._quarantine(state))
            return
        delay = min(
            self.config.backoff_seconds * (2 ** (state.retries - 1)),
            self.config.backoff_cap,
        )
        if self.config.backoff_jitter:
            spread = self.config.backoff_jitter * (
                2.0 * self._backoff_rng.random() - 1.0
            )
            delay = min(delay * (1.0 + spread), self.config.backoff_cap)
        state.not_before = time.monotonic() + delay
        queue.appendleft(state.spec.index)

    def _quarantine(self, state: _TaskState) -> str:
        """Write the crash-report artifact; returns its path."""
        import json

        spec = state.spec
        path = os.path.join(
            self.report_dir,
            f"crash-{spec.class_name}-{spec.version}-t{spec.index}.json",
        )
        report = {
            "format": CRASH_REPORT_FORMAT,
            "version": CRASH_REPORT_VERSION,
            "class": spec.class_name,
            "subject_version": spec.version,
            "task_index": spec.index,
            "provider": spec.provider,
            "test": spec.test,
            "config": spec.config,
            "repro_command": repro_command(spec),
            "attempts": state.retries,
            "completed_verdicts": list(state.verdicts),
            "crashes": state.crashes,
            "quarantined_at": time.time(),
        }
        dump_dir = (spec.config or {}).get("dump_traces")
        if dump_dir:
            # The worker was dumping explored histories; the trace path is
            # a deterministic function of (subject, test), so the report
            # can reference it without a round-trip to the (dead) worker.
            # Re-check offline with: lineup monitor TRACE --model NAME.
            from repro.monitor.trace import default_trace_path

            report["trace_file"] = default_trace_path(
                dump_dir, f"{spec.class_name}({spec.version})", spec.test
            )
        if self._quarantine_extra is not None:
            extra = self._quarantine_extra(spec)
            if extra:
                report.update(extra)
        atomic_write_text(path, json.dumps(report, indent=2, default=repr))
        return path
