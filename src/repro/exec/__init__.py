"""Process-isolated execution: supervised worker pool with crash containment.

Line-Up checks *black-box* subjects (paper Section 4), and a black box
can do worse than hang: it can call ``os._exit``, segfault in a C
extension, exhaust memory, or corrupt interpreter-global state.  PR 1's
in-process watchdog converts *hung* operations into ``divergent``
outcomes, but none of the above is survivable in-process — one hostile
operation would end the whole campaign and lose every verdict in flight.

This package runs each test's two-phase check in a sandboxed child
process instead:

* :mod:`repro.exec.protocol` — the length-prefixed JSON pipe protocol
  (tasks, heartbeats, results) between supervisor and workers;
* :mod:`repro.exec.sandbox` — the worker side: ``resource.setrlimit``
  caps, stderr capture, heartbeat thread, and the check loop;
* :mod:`repro.exec.supervisor` — the parent side: a :class:`WorkerPool`
  that detects worker death (nonzero exit, signal, heartbeat loss),
  retries crashed tests with exponential backoff, and **quarantines**
  repeat offenders with a ``CRASHED`` verdict and a crash-report
  artifact instead of aborting the campaign;
* :mod:`repro.exec.faults` — fault-injection subjects (``os._exit``,
  unbounded allocation, ``SystemExit``, ``SIGSTOP``) used by the crash
  containment test-suite and importable by spawned workers.

The design goal, per the ROADMAP's production north star: degrade
**per-test**, never per-campaign.
"""

from repro.exec.protocol import ProtocolError, decode_frame, encode_frame
from repro.exec.sandbox import ResourceLimits
from repro.exec.supervisor import (
    CRASH_REPORT_FORMAT,
    PoolConfig,
    SupervisorError,
    TaskOutcome,
    TaskSpec,
    WorkerPool,
    repro_command,
)

__all__ = [
    "CRASH_REPORT_FORMAT",
    "PoolConfig",
    "ProtocolError",
    "ResourceLimits",
    "SupervisorError",
    "TaskOutcome",
    "TaskSpec",
    "WorkerPool",
    "decode_frame",
    "encode_frame",
    "repro_command",
]
