"""The worker side of process isolation: sandbox, heartbeats, check loop.

A worker is a spawned child process whose entire job is to run two-phase
checks it is handed over the pipe, inside a sandbox the subject cannot
escape without killing the *worker* — which the supervisor survives:

* ``resource.setrlimit`` caps on address space (``RLIMIT_AS``, so an
  unboundedly-allocating subject gets ``MemoryError`` or dies alone) and
  CPU time (``RLIMIT_CPU``, so a spin that defeats the in-process
  watchdog gets ``SIGXCPU``), plus an optional ``nice`` level so a
  saturated pool does not starve the supervisor;
* stderr redirected to a per-worker file, so the tail of whatever the
  subject printed while dying ends up in the crash report;
* a daemon heartbeat thread, so the supervisor can tell a wedged process
  (stopped, thrashing, stuck in an uninterruptible syscall) from a slow
  one.

Subjects are resolved by *name* through a provider module (default: the
paper's Table 1 registry) because factories are closures and cannot
cross a spawn boundary; the provider must expose ``get_class(name)``.
"""

from __future__ import annotations

import importlib
import os
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any

try:  # POSIX only; on other platforms limits become no-ops.
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

from repro.exec.protocol import ProtocolError, recv_message, send_message

__all__ = ["ResourceLimits", "apply_limits", "worker_main"]

#: Default provider module; must expose ``get_class(name)``.
DEFAULT_PROVIDER = "repro.structures"


@dataclass(frozen=True)
class ResourceLimits:
    """Per-worker sandbox caps (all optional, None = unlimited)."""

    mem_limit_mb: int | None = None  #: RLIMIT_AS, in MiB
    cpu_seconds: int | None = None  #: RLIMIT_CPU, in seconds
    nice: int | None = None  #: increment passed to ``os.nice``

    def to_dict(self) -> dict:
        return {
            "mem_limit_mb": self.mem_limit_mb,
            "cpu_seconds": self.cpu_seconds,
            "nice": self.nice,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResourceLimits":
        return cls(
            mem_limit_mb=data.get("mem_limit_mb"),
            cpu_seconds=data.get("cpu_seconds"),
            nice=data.get("nice"),
        )


def apply_limits(limits: ResourceLimits) -> dict:
    """Apply *limits* to the calling process; return the applied snapshot.

    The snapshot (recorded in the worker's ``ready`` message and in crash
    reports) says what was actually enforced — on platforms without the
    :mod:`resource` module it records that nothing was.
    """
    snapshot: dict[str, Any] = {"applied": resource is not None}
    if resource is None:  # pragma: no cover - non-POSIX
        return snapshot
    if limits.mem_limit_mb is not None:
        soft = limits.mem_limit_mb * 1024 * 1024
        try:
            resource.setrlimit(resource.RLIMIT_AS, (soft, soft))
            snapshot["rlimit_as"] = soft
        except (ValueError, OSError) as exc:  # pragma: no cover - platform
            snapshot["rlimit_as_error"] = str(exc)
    if limits.cpu_seconds is not None:
        try:
            resource.setrlimit(
                resource.RLIMIT_CPU, (limits.cpu_seconds, limits.cpu_seconds + 5)
            )
            snapshot["rlimit_cpu"] = limits.cpu_seconds
        except (ValueError, OSError) as exc:  # pragma: no cover - platform
            snapshot["rlimit_cpu_error"] = str(exc)
    if limits.nice is not None:
        try:
            snapshot["nice"] = os.nice(limits.nice)
        except OSError as exc:  # pragma: no cover - platform
            snapshot["nice_error"] = str(exc)
    return snapshot


def _resolve_subject(spec: dict):
    """Build (SystemUnderTest, FiniteTest, CheckConfig) from a task spec."""
    from repro.core.checkpoint import config_from_dict, test_from_dict
    from repro.core.harness import SystemUnderTest

    provider = importlib.import_module(spec.get("provider") or DEFAULT_PROVIDER)
    entry = provider.get_class(spec["class_name"])
    version = spec["version"]
    subject = SystemUnderTest(
        entry.factory(version), f"{entry.name}({version})"
    )
    test = test_from_dict(spec["test"])
    config = config_from_dict(spec.get("config") or {})
    return subject, test, config


def _run_task(spec: dict) -> dict:
    """Run one task; dispatch on the spec's ``kind``.

    ``"check"`` (the default) runs a full two-phase check; ``"probe"``
    and ``"shard"`` are the swarm task kinds (partition probing and
    lease execution — see :mod:`repro.swarm.worker`); ``"stream"`` runs
    one shard of a streaming watch (see :mod:`repro.stream.worker`);
    ``"generate"`` checks one generation candidate and harvests its
    coverage fingerprints (see :mod:`repro.generate.worker`).
    """
    kind = spec.get("kind") or "check"
    if kind == "probe":
        from repro.swarm.worker import run_probe_task

        return run_probe_task(spec)
    if kind == "shard":
        from repro.swarm.worker import run_shard_task

        return run_shard_task(spec)
    if kind == "stream":
        from repro.stream.worker import run_stream_task

        return run_stream_task(spec)
    if kind == "generate":
        from repro.generate.worker import run_generate_task

        return run_generate_task(spec)

    from repro.core.campaign import TestSummary
    from repro.core.checker import check

    subject, test, config = _resolve_subject(spec)
    result = check(subject, test, config)
    summary = TestSummary.from_result(result)
    return {
        "verdict": result.verdict,
        "summary": summary.to_dict(),
        "violations": [v.kind for v in result.violations],
    }


class _Heartbeat:
    """Background thread pulsing ``heartbeat`` messages to the supervisor.

    The worker's main thread may be deep inside a hostile subject, so the
    pulse runs on its own daemon thread; a shared ``state`` dict carries
    the task currently being executed.  Sends share a lock with the main
    thread so result frames and heartbeat frames never interleave.
    """

    def __init__(self, conn: Any, lock: threading.Lock, interval: float) -> None:
        self._conn = conn
        self._lock = lock
        self._interval = interval
        self._stop = threading.Event()
        self.state: dict[str, Any] = {"task": None, "started": None}
        self._thread = threading.Thread(
            target=self._pulse, name="lineup-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _pulse(self) -> None:
        seq = 0
        while not self._stop.wait(self._interval):
            seq += 1
            task = self.state.get("task")
            started = self.state.get("started")
            message = {
                "type": "heartbeat",
                "seq": seq,
                "task": task,
                "elapsed": (
                    time.monotonic() - started if started is not None else None
                ),
            }
            try:
                with self._lock:
                    send_message(self._conn, message)
            except ProtocolError:
                return  # supervisor is gone; the worker will notice too


def worker_main(
    conn: Any,
    stderr_path: str,
    limits_data: dict,
    heartbeat_interval: float,
) -> None:
    """Entry point of a sandboxed worker process.

    Protocol: apply limits → send ``ready`` → loop on ``task`` messages
    until ``shutdown`` (or the pipe dies, which means the supervisor is
    gone and the worker must not outlive it).
    """
    try:
        stderr_fd = os.open(
            stderr_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600
        )
        os.dup2(stderr_fd, 2)
        os.close(stderr_fd)
    except OSError:  # pragma: no cover - sandbox degradation, not fatal
        pass
    snapshot = apply_limits(ResourceLimits.from_dict(limits_data))
    lock = threading.Lock()
    heartbeat = _Heartbeat(conn, lock, heartbeat_interval)
    heartbeat.start()
    try:
        with lock:
            send_message(
                conn, {"type": "ready", "pid": os.getpid(), "rlimits": snapshot}
            )
        while True:
            try:
                message = recv_message(conn)
            except ProtocolError:
                return  # supervisor died; exit with it
            if message is None or message["type"] == "shutdown":
                return
            if message["type"] != "task":
                continue  # unknown directives are ignored, not fatal
            task_id = message["id"]
            heartbeat.state["task"] = task_id
            heartbeat.state["started"] = time.monotonic()
            try:
                payload = _run_task(message["spec"])
                reply = {"type": "result", "id": task_id, **payload}
            except BaseException:
                # An internal error of the check itself (the subject's
                # own exceptions become responses inside the harness).
                reply = {
                    "type": "task-error",
                    "id": task_id,
                    "error": traceback.format_exc(limit=20),
                }
            heartbeat.state["task"] = None
            heartbeat.state["started"] = None
            try:
                with lock:
                    send_message(conn, reply)
            except ProtocolError:
                return
    finally:
        heartbeat.stop()
