"""Fault-injection subjects for the crash-containment test-suite.

These classes live in the installed package (not under ``tests/``) so
spawned workers can import them by module path — a worker resolves its
subject through a *provider* module, and test tasks name this one.

Each class models one way a hostile black-box subject can hurt the
checker, graded by what layer must contain it:

* :class:`CrashingRegister` — ``os._exit(3)`` mid-operation: kills the
  worker process outright; only process isolation survives it.
* :class:`FreezingRegister` — ``SIGSTOP`` to its own process: the whole
  worker wedges, heartbeats stop; the supervisor's heartbeat-loss
  detection must kill and retry.
* :class:`AllocatingRegister` — allocates without bound: the sandbox's
  ``RLIMIT_AS`` turns it into a ``MemoryError`` (an ordinary exceptional
  response) or an isolated worker death instead of a host OOM.
* :class:`ExitingRegister` — raises ``SystemExit`` mid-operation: the
  harness already converts it into an exceptional response in-process;
  included to pin that the layers compose.
* :class:`FlakyRegister` — verdict flips once per environment (via a
  marker file under ``LINEUP_FAULT_DIR``): the first check observes
  nondeterministic serial behaviour (FAIL), every later one is
  deterministic (PASS).  Drives the flaky-verdict guard.
* :class:`NondetRegister` — nondeterministic in *every* process (a
  per-process instantiation counter leaks into results): a FAIL that a
  re-check confirms.
* :class:`RacyCounter` — serially clean, but dies via ``os._exit(5)``
  under some concurrent interleavings only: phase 1 passes, and only
  the phase-2 shard whose subtree contains the killer interleaving
  crashes its workers.  Drives the swarm quarantine path (lost-shard
  requeue, retry caps, and the resumable shard checkpoint).
* :class:`GoodRegister` — a well-behaved control subject.

``BoundedBuffer`` is also registered here (the registry's worked
monitor example), so sharded fault-injection tests and the CI smoke job
can check it through this provider inside spawned workers.

The ``get_class`` here falls back to the paper's Table 1 registry, so a
campaign plan can mix hostile classes with real ones.
"""

from __future__ import annotations

import os
import signal
import sys
from typing import Any

from repro.core.events import Invocation
from repro.runtime import Runtime
from repro.structures.bounded_buffer import BoundedBuffer as _BoundedBuffer
from repro.structures.registry import ClassUnderTest
from repro.structures.registry import get_class as _registry_get_class

__all__ = [
    "CRASHING_REGISTER_EXIT",
    "FAULT_REGISTRY",
    "RACY_COUNTER_EXIT",
    "get_class",
]

#: Exit status of a worker felled by :class:`CrashingRegister`.
CRASHING_REGISTER_EXIT = 3
#: Exit status of a worker felled by :class:`RacyCounter` — the code
#: the swarm quarantine/repro path observes in crashed shards.
RACY_COUNTER_EXIT = 5


def _inv(method: str, *args: Any) -> Invocation:
    return Invocation(method, args)


def _fault_dir() -> str:
    return os.environ.get("LINEUP_FAULT_DIR", "")


class GoodRegister:
    """A correct register: linearizable, deterministic, boring."""

    def __init__(self, rt: Runtime) -> None:
        self._cell = rt.volatile(0)

    def Get(self) -> int:
        return self._cell.get()

    def Set(self, value: int) -> None:
        self._cell.set(value)


class CrashingRegister(GoodRegister):
    """``Boom`` ends the hosting process with ``os._exit(3)`` mid-operation."""

    def Boom(self) -> None:
        sys.stderr.write("CrashingRegister: going down via os._exit(3)\n")
        sys.stderr.flush()
        os._exit(CRASHING_REGISTER_EXIT)


class FreezingRegister(GoodRegister):
    """``Freeze`` SIGSTOPs its own process: heartbeats cease, nothing dies."""

    def Freeze(self) -> None:
        os.kill(os.getpid(), signal.SIGSTOP)


class AllocatingRegister(GoodRegister):
    """``Hog`` allocates ~64 MiB per step until something gives.

    The iteration cap bounds the damage to ~2 GiB even if the sandbox
    failed to apply ``RLIMIT_AS`` (e.g. on a non-POSIX platform).
    """

    def Hog(self) -> int:
        hoard = []
        for _ in range(32):
            hoard.append(bytearray(64 * 1024 * 1024))
        return len(hoard)


class ExitingRegister(GoodRegister):
    """``Quit`` raises ``SystemExit`` mid-operation (harness-containable)."""

    def Quit(self) -> None:
        raise SystemExit(7)


class FlakyRegister:
    """FAILs the first check per environment, PASSes ever after.

    Construction flips a marker file under ``LINEUP_FAULT_DIR``; ``Get``
    returns whether the marker predated this instance.  During the first
    check's phase 1 the marker appears *between* serial executions, so
    the same serial prefix yields two different responses — a
    nondeterminism FAIL.  Once the marker exists, behaviour is constant
    and the check PASSes.  Together with a crash in the same worker this
    reproduces exactly the scenario the flaky-verdict guard exists for.
    """

    def __init__(self, rt: Runtime) -> None:
        fault_dir = _fault_dir()
        if not fault_dir:
            # No fault dir configured: degrade to a deterministic
            # register rather than littering marker files in the cwd.
            self._seen = True
            return
        marker = os.path.join(fault_dir, "flaky-marker")
        self._seen = os.path.exists(marker)
        if not self._seen:
            try:
                with open(marker, "x"):
                    pass
            except OSError:
                pass

    def Get(self) -> bool:
        return self._seen


_NONDET_COUNTER = {"value": 0}


class NondetRegister:
    """Serially nondeterministic in every process (a confirmed FAIL).

    A module-global instantiation counter leaks into ``Get``: phase 1's
    successive serial executions observe different responses for the same
    serial prefix, so every check of this class FAILs, in any process.
    """

    def __init__(self, rt: Runtime) -> None:
        _NONDET_COUNTER["value"] += 1
        self._stamp = _NONDET_COUNTER["value"]

    def Get(self) -> int:
        return self._stamp


class RacyCounter:
    """Dies only under specific concurrent interleavings.

    ``Incr`` reads the counter twice before writing; each volatile
    access is a scheduling point, so a concurrent ``Incr`` can slip its
    write between the two reads — and when that torn read is observed
    the process dies via ``os._exit(5)``.  No serial execution can
    trigger it (phase 1 is clean), and the straight-line default
    schedule a partition probe follows is clean too, so in a swarm run
    only the shards whose subtree contains a torn interleaving crash
    their workers and get quarantined.
    """

    def __init__(self, rt: Runtime) -> None:
        self._cell = rt.volatile(0)

    def Incr(self) -> None:
        # Returns None so a lost update is not itself a linearizability
        # violation — the *only* observable hostility is the crash.
        seen = self._cell.get()
        current = self._cell.get()
        if current != seen:
            sys.stderr.write(
                "RacyCounter: torn increment, dying via os._exit(5)\n"
            )
            sys.stderr.flush()
            os._exit(RACY_COUNTER_EXIT)
        self._cell.set(current + 1)

    def Get(self) -> int:
        return self._cell.get()


def _entry(name: str, cls: type, invocations: tuple[Invocation, ...]) -> ClassUnderTest:
    return ClassUnderTest(
        name=name,
        make=lambda rt, v, _cls=cls: _cls(rt),
        invocations=invocations,
        notes="fault-injection subject (crash-containment suite)",
    )


FAULT_REGISTRY: tuple[ClassUnderTest, ...] = (
    _entry("GoodRegister", GoodRegister, (_inv("Get"), _inv("Set", 1))),
    _entry("CrashingRegister", CrashingRegister, (_inv("Boom"),)),
    _entry("FreezingRegister", FreezingRegister, (_inv("Freeze"),)),
    _entry("AllocatingRegister", AllocatingRegister, (_inv("Hog"),)),
    _entry("ExitingRegister", ExitingRegister, (_inv("Quit"), _inv("Get"))),
    _entry("FlakyRegister", FlakyRegister, (_inv("Get"),)),
    _entry("NondetRegister", NondetRegister, (_inv("Get"),)),
    _entry("RacyCounter", RacyCounter, (_inv("Incr"), _inv("Get"))),
    ClassUnderTest(
        name="BoundedBuffer",
        make=lambda rt, v: _BoundedBuffer(rt, v),
        invocations=(
            _inv("Put", 1),
            _inv("Take"),
            _inv("TryTake"),
            _inv("Size"),
        ),
        notes="monitor worked example, exposed for sharded worker checks",
    ),
)


def get_class(name: str) -> ClassUnderTest:
    """Resolve a fault class, falling back to the Table 1 registry."""
    for entry in FAULT_REGISTRY:
        if entry.name == name:
            return entry
    return _registry_get_class(name)
