"""The supervisor ⟷ worker wire protocol.

Messages are JSON objects framed with an explicit 4-byte big-endian
length prefix and carried over a :mod:`multiprocessing` pipe.  The frame
layer is deliberately paranoid: a worker that dies mid-write, a hostile
subject that scribbles on file descriptors, or a partial read after a
``SIGKILL`` must surface as a clean :class:`ProtocolError` (which the
supervisor treats as a worker crash), never as a hang or a misparsed
message.

Message types
-------------

worker → supervisor:

* ``{"type": "ready", "pid": ..., "rlimits": {...}}`` — sent once after
  the sandbox applied its resource limits; ``rlimits`` is the applied
  limit snapshot (recorded in crash reports).
* ``{"type": "heartbeat", "seq": n, "task": id|null, "elapsed": s}`` —
  sent every ``heartbeat_interval`` seconds by a background thread.
  Heartbeat loss beyond the supervisor's timeout means the whole process
  is wedged (stopped, swapping, or stuck in an uninterruptible syscall)
  and the worker is killed.
* ``{"type": "result", "id": n, "verdict": ..., "summary": {...}}`` —
  one finished check.
* ``{"type": "task-error", "id": n, "error": ...}`` — the check raised
  an internal error; treated like a crash (retry, then quarantine).

supervisor → worker:

* ``{"type": "task", "id": n, "spec": {...}}`` — run one check.
* ``{"type": "shutdown"}`` — exit the worker loop cleanly.
"""

from __future__ import annotations

import json
import struct
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "recv_message",
    "send_message",
]

#: Upper bound on one frame; a length prefix beyond this is corruption,
#: not a legitimately huge message (results are summaries, not histories).
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A frame could not be encoded, decoded, or delivered intact."""


def encode_frame(message: dict) -> bytes:
    """Serialize *message* to a length-prefixed JSON frame."""
    try:
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-able: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(frame: bytes) -> dict:
    """Parse one length-prefixed JSON frame, validating the prefix."""
    if len(frame) < _HEADER.size:
        raise ProtocolError(f"truncated frame: {len(frame)} bytes, no header")
    (length,) = _HEADER.unpack_from(frame)
    payload = frame[_HEADER.size:]
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header claims {length} bytes; corrupt")
    if len(payload) != length:
        raise ProtocolError(
            f"frame header claims {length} bytes but {len(payload)} followed"
        )
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame payload is not a message object")
    return message


def send_message(conn: Any, message: dict) -> None:
    """Send one framed message over a pipe connection.

    Delivery failures (the peer is gone) surface as :class:`ProtocolError`
    so callers have a single failure mode to handle.
    """
    frame = encode_frame(message)
    try:
        conn.send_bytes(frame)
    except (OSError, ValueError, BrokenPipeError, EOFError) as exc:
        raise ProtocolError(f"cannot send {message.get('type')!r}: {exc}") from exc


def recv_message(conn: Any, timeout: float | None = None) -> dict | None:
    """Receive one framed message; None when *timeout* elapses first.

    EOF (the peer died) and torn frames raise :class:`ProtocolError`.
    """
    try:
        if timeout is not None and not conn.poll(timeout):
            return None
        frame = conn.recv_bytes(MAX_FRAME_BYTES + _HEADER.size)
    except EOFError as exc:
        raise ProtocolError("connection closed by peer") from exc
    except (OSError, ValueError) as exc:
        raise ProtocolError(f"cannot receive frame: {exc}") from exc
    return decode_frame(frame)
